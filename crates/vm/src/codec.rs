//! Binary codec for compiled artifacts: bytecode ([`Op`], [`Proto`],
//! [`ModuleCode`]), constant-pool [`Value`]s, and the core-forms IR
//! ([`CoreExpr`], [`CoreForm`]) that the tree-walking engine runs.
//!
//! Built on the primitive wire format in `lagoon_syntax::wire` (LEB128
//! varints, length-prefixed strings, self-describing datum tags).
//! Decoding is **panic-free**: every read is bounds-checked, unknown
//! tags are structured [`WireError`]s, and recursive structures carry a
//! depth limit — a corrupted artifact must surface as a diagnostic and
//! a recompile, never a crash.
//!
//! Symbols are serialized by *name* and re-interned on decode. Gensyms
//! (`x~42`) therefore come back as interned symbols distinct from any
//! live gensym with the same printed name; the module store's
//! invalidation rules (see `lagoon_core::store`) are responsible for
//! never mixing decoded artifacts with freshly expanded dependents.
//!
//! Syntax-object constants (`quote-syntax`) are encoded as their datum
//! plus source span; scope sets and syntax properties are *not*
//! preserved. That is sufficient for run-time uses of quoted syntax
//! (data inspection, error reporting) — modules whose exports need
//! richer phase-1 state are rejected as uncacheable by the store layer.

use crate::bytecode::{CaptureSrc, ModuleCode, Op, Proto};
use crate::ir::{CoreExpr, CoreForm, LambdaCore};
use lagoon_runtime::{Arity, Value};
use lagoon_syntax::{ScopeSet, Symbol, Syntax, WireError, WireReader, WireWriter};
use std::rc::Rc;

/// Maximum nesting depth accepted when decoding recursive structures.
const MAX_DEPTH: usize = 512;

macro_rules! op_codec {
    (
        plain  { $($pt:literal => $pv:ident,)* }
        index  { $($it:literal => $iv:ident,)* }
        argc   { $($at:literal => $av:ident,)* }
        index2 { $($dt:literal => $dv:ident,)* }
    ) => {
        /// Encodes one instruction (a `u8` tag plus varint operands).
        pub fn encode_op(w: &mut WireWriter, op: Op) {
            match op {
                $(Op::$pv => w.u8($pt),)*
                $(Op::$iv(x) => {
                    w.u8($it);
                    w.u32(x);
                })*
                $(Op::$av(n) => {
                    w.u8($at);
                    w.uint(u64::from(n));
                })*
                $(Op::$dv(x, y) => {
                    w.u8($dt);
                    w.u32(x);
                    w.u32(y);
                })*
            }
        }

        /// Decodes one instruction.
        ///
        /// # Errors
        ///
        /// Fails on truncation or an unknown opcode tag.
        pub fn decode_op(r: &mut WireReader) -> Result<Op, WireError> {
            let at = r.position();
            let tag = r.u8()?;
            Ok(match tag {
                $($pt => Op::$pv,)*
                $($it => Op::$iv(r.u32()?),)*
                $($at => Op::$av(r.u16()?),)*
                $($dt => Op::$dv(r.u32()?, r.u32()?),)*
                other => {
                    return Err(WireError::new(format!("unknown opcode tag {other}"), at))
                }
            })
        }

        #[cfg(test)]
        fn all_ops() -> Vec<Op> {
            vec![$(Op::$pv,)* $(Op::$iv(7),)* $(Op::$av(3),)* $(Op::$dv(7, 5),)*]
        }
    };
}

op_codec! {
    plain {
        1 => Void,
        12 => Return,
        13 => Pop,
        14 => BoxNew,
        15 => BoxGet,
        16 => BoxSet,
        17 => Add2,
        18 => Sub2,
        19 => Mul2,
        20 => Div2,
        21 => Lt2,
        22 => Le2,
        23 => Gt2,
        24 => Ge2,
        25 => NumEq2,
        26 => Add1,
        27 => Sub1,
        28 => ZeroP,
        29 => Car,
        30 => Cdr,
        31 => Cons,
        32 => NullP,
        33 => PairP,
        34 => Not,
        35 => EqP,
        36 => VectorRef,
        37 => VectorSet,
        38 => VectorLength,
        39 => FlAdd,
        40 => FlSub,
        41 => FlMul,
        42 => FlDiv,
        43 => FlLt,
        44 => FlLe,
        45 => FlGt,
        46 => FlGe,
        47 => FlEq,
        48 => FlSqrt,
        49 => FlAbs,
        50 => FlMin,
        51 => FlMax,
        52 => FxAdd,
        53 => FxSub,
        54 => FxMul,
        55 => FxLt,
        56 => FxLe,
        57 => FxGt,
        58 => FxGe,
        59 => FxEq,
        60 => FcAdd,
        61 => FcSub,
        62 => FcMul,
        63 => FcDiv,
        64 => FcMag,
        65 => UnsafeCar,
        66 => UnsafeCdr,
        67 => UnsafeVectorRef,
        68 => UnsafeVectorSet,
        69 => UnsafeVectorLength,
        70 => FxToFl,
        74 => FlUnbox,
        75 => FlUnboxFx,
        76 => FlBox,
        77 => FlSAdd,
        78 => FlSSub,
        79 => FlSMul,
        80 => FlSDiv,
        81 => FlSSqrt,
        82 => FlSAbs,
        83 => FlSMin,
        84 => FlSMax,
        85 => FlSLt,
        86 => FlSLe,
        87 => FlSGt,
        88 => FlSGe,
        89 => FlSEq,
    }
    index {
        0 => Const,
        2 => LoadLocal,
        3 => StoreLocal,
        4 => LoadCapture,
        5 => LoadGlobal,
        6 => StoreGlobal,
        7 => Jump,
        8 => JumpIfFalse,
        9 => MakeClosure,
        71 => FlPushLocal,
        72 => FlPushCapture,
        73 => FlPushConst,
        // peephole compare-and-branch fusions (operand: jump target)
        90 => BrLt2,
        91 => BrLe2,
        92 => BrGt2,
        93 => BrGe2,
        94 => BrNumEq2,
        95 => BrZeroP,
        96 => BrNullP,
        97 => BrPairP,
        98 => BrFlLt,
        99 => BrFlLe,
        100 => BrFlGt,
        101 => BrFlGe,
        102 => BrFlEq,
        103 => BrFxLt,
        104 => BrFxLe,
        105 => BrFxGt,
        106 => BrFxGe,
        107 => BrFxEq,
        108 => BrFlSLt,
        109 => BrFlSLe,
        110 => BrFlSGt,
        111 => BrFlSGe,
        112 => BrFlSEq,
        // peephole load+unop fusions (operand: local slot)
        113 => CarL,
        114 => CdrL,
        115 => UnsafeCarL,
        116 => UnsafeCdrL,
    }
    argc {
        10 => Call,
        11 => TailCall,
    }
    index2 {
        // peephole load/operate superinstructions (two u32 operands)
        117 => AddLL,
        118 => SubLL,
        119 => MulLL,
        120 => AddLC,
        121 => SubLC,
        122 => VectorRefLL,
        123 => FxAddLL,
        124 => FxSubLL,
        125 => FxAddLC,
        126 => FxSubLC,
        127 => UnsafeVectorRefLL,
    }
}

/// Encodes a constant-pool value.
///
/// # Errors
///
/// Fails for values with no serialized form (procedures, boxes,
/// values packages) — such a module is *uncacheable*, not broken.
pub fn encode_value(w: &mut WireWriter, v: &Value) -> Result<(), WireError> {
    if v.is_void() {
        w.u8(2);
        return Ok(());
    }
    if let Some(stx) = v.as_syntax() {
        w.u8(1);
        w.datum(&stx.to_datum());
        w.span(stx.span());
        return Ok(());
    }
    match v.to_datum() {
        Some(d) => {
            w.u8(0);
            w.datum(&d);
            Ok(())
        }
        None => Err(WireError::new(
            format!("a {} constant has no serialized form", v.tag_name()),
            w.bytes().len(),
        )),
    }
}

/// Decodes a constant-pool value.
///
/// # Errors
///
/// Fails on truncation or an unknown value tag.
pub fn decode_value(r: &mut WireReader) -> Result<Value, WireError> {
    let at = r.position();
    match r.u8()? {
        0 => Ok(Value::from_datum(&r.datum()?)),
        1 => {
            let d = r.datum()?;
            let span = r.span()?;
            Ok(Value::Syntax(Syntax::from_datum(
                &d,
                span,
                &ScopeSet::default(),
            )))
        }
        2 => Ok(Value::Void),
        t => Err(WireError::new(format!("unknown value tag {t}"), at)),
    }
}

/// Encodes a procedure prototype (recursively, children included).
///
/// # Errors
///
/// Fails if any constant in the (transitive) pools is unserializable.
pub fn encode_proto(w: &mut WireWriter, p: &Proto) -> Result<(), WireError> {
    match p.name {
        Some(n) => {
            w.bool(true);
            w.symbol(n);
        }
        None => w.bool(false),
    }
    w.uint(p.arity.required as u64);
    w.bool(p.arity.rest);
    w.u32(p.nlocals);
    w.len(p.captures.len());
    for c in &p.captures {
        match c {
            CaptureSrc::Local(i) => {
                w.u8(0);
                w.u32(*i);
            }
            CaptureSrc::Capture(i) => {
                w.u8(1);
                w.u32(*i);
            }
        }
    }
    w.len(p.code.len());
    for op in &p.code {
        encode_op(w, *op);
    }
    w.len(p.consts.len());
    for v in &p.consts {
        encode_value(w, v)?;
    }
    w.len(p.protos.len());
    for child in &p.protos {
        encode_proto(w, child)?;
    }
    Ok(())
}

/// Decodes a procedure prototype.
///
/// # Errors
///
/// Fails on truncation, unknown tags, or implausible nesting depth.
pub fn decode_proto(r: &mut WireReader) -> Result<Rc<Proto>, WireError> {
    decode_proto_at(r, 0)
}

fn decode_proto_at(r: &mut WireReader, depth: usize) -> Result<Rc<Proto>, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::new("proto nesting too deep", r.position()));
    }
    let name = if r.bool()? { Some(r.symbol()?) } else { None };
    let required = usize::try_from(r.uint()?)
        .map_err(|_| WireError::new("arity out of range", r.position()))?;
    let rest = r.bool()?;
    let nlocals = r.u32()?;
    let ncaptures = r.len()?;
    let mut captures = Vec::with_capacity(ncaptures);
    for _ in 0..ncaptures {
        let at = r.position();
        captures.push(match r.u8()? {
            0 => CaptureSrc::Local(r.u32()?),
            1 => CaptureSrc::Capture(r.u32()?),
            t => return Err(WireError::new(format!("unknown capture tag {t}"), at)),
        });
    }
    let ncode = r.len()?;
    let mut code = Vec::with_capacity(ncode);
    for _ in 0..ncode {
        code.push(decode_op(r)?);
    }
    let nconsts = r.len()?;
    let mut consts = Vec::with_capacity(nconsts);
    for _ in 0..nconsts {
        consts.push(decode_value(r)?);
    }
    let nprotos = r.len()?;
    let mut protos = Vec::with_capacity(nprotos);
    for _ in 0..nprotos {
        protos.push(decode_proto_at(r, depth + 1)?);
    }
    Ok(Rc::new(Proto {
        name,
        arity: Arity { required, rest },
        nlocals,
        captures,
        code,
        consts,
        protos,
    }))
}

/// Encodes a whole compiled module's bytecode.
///
/// # Errors
///
/// Fails if any constant is unserializable (module is uncacheable).
pub fn encode_module_code(w: &mut WireWriter, code: &ModuleCode) -> Result<(), WireError> {
    encode_proto(w, &code.top)?;
    w.len(code.global_names.len());
    for s in &code.global_names {
        w.symbol(*s);
    }
    w.len(code.defined.len());
    for i in &code.defined {
        w.u32(*i);
    }
    Ok(())
}

/// Decodes a whole compiled module's bytecode.
///
/// # Errors
///
/// Fails on truncation, unknown tags, or implausible nesting depth.
pub fn decode_module_code(r: &mut WireReader) -> Result<ModuleCode, WireError> {
    let top = decode_proto(r)?;
    let n = r.len()?;
    let mut global_names = Vec::with_capacity(n);
    for _ in 0..n {
        global_names.push(r.symbol()?);
    }
    let n = r.len()?;
    let mut defined = Vec::with_capacity(n);
    for _ in 0..n {
        defined.push(r.u32()?);
    }
    Ok(ModuleCode {
        top,
        global_names,
        defined,
    })
}

fn encode_exprs(w: &mut WireWriter, exprs: &[CoreExpr]) -> Result<(), WireError> {
    w.len(exprs.len());
    for e in exprs {
        encode_expr(w, e)?;
    }
    Ok(())
}

fn encode_bindings(w: &mut WireWriter, binds: &[(Symbol, CoreExpr)]) -> Result<(), WireError> {
    w.len(binds.len());
    for (sym, rhs) in binds {
        w.symbol(*sym);
        encode_expr(w, rhs)?;
    }
    Ok(())
}

/// Encodes a core-IR expression (the tree-walking engine's input).
///
/// # Errors
///
/// Fails if a quoted constant is unserializable.
pub fn encode_expr(w: &mut WireWriter, e: &CoreExpr) -> Result<(), WireError> {
    match e {
        CoreExpr::Quote(v) => {
            w.u8(0);
            encode_value(w, v)
        }
        CoreExpr::QuoteSyntax(stx) => {
            w.u8(1);
            w.datum(&stx.to_datum());
            w.span(stx.span());
            Ok(())
        }
        CoreExpr::Var(sym, span) => {
            w.u8(2);
            w.symbol(*sym);
            w.span(*span);
            Ok(())
        }
        CoreExpr::If(c, t, f) => {
            w.u8(3);
            encode_expr(w, c)?;
            encode_expr(w, t)?;
            encode_expr(w, f)
        }
        CoreExpr::Begin(exprs) => {
            w.u8(4);
            encode_exprs(w, exprs)
        }
        CoreExpr::Lambda(lam) => {
            w.u8(5);
            match lam.name {
                Some(n) => {
                    w.bool(true);
                    w.symbol(n);
                }
                None => w.bool(false),
            }
            w.len(lam.formals.len());
            for f in &lam.formals {
                w.symbol(*f);
            }
            match lam.rest {
                Some(rest) => {
                    w.bool(true);
                    w.symbol(rest);
                }
                None => w.bool(false),
            }
            encode_exprs(w, &lam.body)?;
            w.span(lam.span);
            Ok(())
        }
        CoreExpr::Let(binds, body) => {
            w.u8(6);
            encode_bindings(w, binds)?;
            encode_exprs(w, body)
        }
        CoreExpr::Letrec(binds, body) => {
            w.u8(7);
            encode_bindings(w, binds)?;
            encode_exprs(w, body)
        }
        CoreExpr::Set(sym, rhs, span) => {
            w.u8(8);
            w.symbol(*sym);
            encode_expr(w, rhs)?;
            w.span(*span);
            Ok(())
        }
        CoreExpr::App(f, args, span) => {
            w.u8(9);
            encode_expr(w, f)?;
            encode_exprs(w, args)?;
            w.span(*span);
            Ok(())
        }
    }
}

fn decode_exprs(r: &mut WireReader, depth: usize) -> Result<Vec<CoreExpr>, WireError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_expr_at(r, depth)?);
    }
    Ok(out)
}

/// Decodes a core-IR expression.
///
/// # Errors
///
/// Fails on truncation, unknown tags, or implausible nesting depth.
pub fn decode_expr(r: &mut WireReader) -> Result<CoreExpr, WireError> {
    decode_expr_at(r, 0)
}

fn decode_expr_at(r: &mut WireReader, depth: usize) -> Result<CoreExpr, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::new("expression nesting too deep", r.position()));
    }
    let at = r.position();
    let d = depth + 1;
    Ok(match r.u8()? {
        0 => CoreExpr::Quote(decode_value(r)?),
        1 => {
            let datum = r.datum()?;
            let span = r.span()?;
            CoreExpr::QuoteSyntax(Syntax::from_datum(&datum, span, &ScopeSet::default()))
        }
        2 => CoreExpr::Var(r.symbol()?, r.span()?),
        3 => CoreExpr::If(
            Box::new(decode_expr_at(r, d)?),
            Box::new(decode_expr_at(r, d)?),
            Box::new(decode_expr_at(r, d)?),
        ),
        4 => CoreExpr::Begin(decode_exprs(r, d)?),
        5 => {
            let name = if r.bool()? { Some(r.symbol()?) } else { None };
            let nformals = r.len()?;
            let mut formals = Vec::with_capacity(nformals);
            for _ in 0..nformals {
                formals.push(r.symbol()?);
            }
            let rest = if r.bool()? { Some(r.symbol()?) } else { None };
            let body = decode_exprs(r, d)?;
            let span = r.span()?;
            CoreExpr::Lambda(LambdaCore {
                name,
                formals,
                rest,
                body,
                span,
            })
        }
        6 => {
            let binds = decode_bindings(r, d)?;
            CoreExpr::Let(binds, decode_exprs(r, d)?)
        }
        7 => {
            let binds = decode_bindings(r, d)?;
            CoreExpr::Letrec(binds, decode_exprs(r, d)?)
        }
        8 => {
            let sym = r.symbol()?;
            let rhs = Box::new(decode_expr_at(r, d)?);
            let span = r.span()?;
            CoreExpr::Set(sym, rhs, span)
        }
        9 => {
            let f = Box::new(decode_expr_at(r, d)?);
            let args = decode_exprs(r, d)?;
            let span = r.span()?;
            CoreExpr::App(f, args, span)
        }
        t => return Err(WireError::new(format!("unknown expression tag {t}"), at)),
    })
}

fn decode_bindings(r: &mut WireReader, depth: usize) -> Result<Vec<(Symbol, CoreExpr)>, WireError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let sym = r.symbol()?;
        out.push((sym, decode_expr_at(r, depth)?));
    }
    Ok(out)
}

/// Encodes a top-level core form.
///
/// # Errors
///
/// Fails if a quoted constant is unserializable.
pub fn encode_form(w: &mut WireWriter, form: &CoreForm) -> Result<(), WireError> {
    match form {
        CoreForm::Define(sym, rhs, span) => {
            w.u8(0);
            w.symbol(*sym);
            encode_expr(w, rhs)?;
            w.span(*span);
            Ok(())
        }
        CoreForm::Expr(e) => {
            w.u8(1);
            encode_expr(w, e)
        }
    }
}

/// Decodes a top-level core form.
///
/// # Errors
///
/// Fails on truncation, unknown tags, or implausible nesting depth.
pub fn decode_form(r: &mut WireReader) -> Result<CoreForm, WireError> {
    let at = r.position();
    Ok(match r.u8()? {
        0 => {
            let sym = r.symbol()?;
            let rhs = decode_expr(r)?;
            let span = r.span()?;
            CoreForm::Define(sym, rhs, span)
        }
        1 => CoreForm::Expr(decode_expr(r)?),
        t => return Err(WireError::new(format!("unknown form tag {t}"), at)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_syntax::Span;

    fn span() -> Span {
        Span::synthetic()
    }

    #[test]
    fn every_opcode_round_trips() {
        let ops = all_ops();
        assert!(
            ops.len() >= 128,
            "expected the full instruction set incl. peephole superinstructions"
        );
        let mut w = WireWriter::new();
        for op in &ops {
            encode_op(&mut w, *op);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for op in &ops {
            assert_eq!(decode_op(&mut r).unwrap(), *op);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn opcode_tags_are_distinct() {
        // round-tripping all ops through one buffer already proves the
        // tags are consistent; this checks no two variants share a tag
        let ops = all_ops();
        let mut tags = std::collections::HashSet::new();
        for op in &ops {
            let mut w = WireWriter::new();
            encode_op(&mut w, *op);
            assert!(tags.insert(w.bytes()[0]), "duplicate tag for {op:?}");
        }
    }

    #[test]
    fn fused_two_operand_ops_keep_operand_order() {
        // asymmetric operands so a swapped encode/decode would show
        let ops = [
            Op::AddLL(1, 2),
            Op::SubLC(9, 4),
            Op::VectorRefLL(0, 3),
            Op::FxAddLC(6, 8),
            Op::UnsafeVectorRefLL(2, 1),
        ];
        let mut w = WireWriter::new();
        for op in &ops {
            encode_op(&mut w, *op);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for op in &ops {
            assert_eq!(decode_op(&mut r).unwrap(), *op);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn tagged_value_constants_round_trip() {
        // every constant class the tagged word representation encodes
        // differently from plain datums: immediates (int/char/bool/nil),
        // the 48-bit immediate-integer boundary (beyond it integers are
        // heap-boxed but must encode identically), floats incl. the
        // canonical NaN and both signed zeros, and componentwise complex
        let vals = [
            Value::Void,
            Value::Nil,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int((1 << 47) - 1),
            Value::Int(-(1 << 47)),
            Value::Int(1 << 47),  // heap-boxed
            Value::Int(i64::MAX), // heap-boxed
            Value::Int(i64::MIN), // heap-boxed
            Value::Char('λ'),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(1.5),
            Value::Complex(f64::NAN, -0.0),
            Value::string("héllo"),
            Value::Symbol(Symbol::intern("sym")),
            Value::list(vec![Value::Int(1), Value::Float(2.5)]),
        ];
        for v in &vals {
            let mut w = WireWriter::new();
            encode_value(&mut w, v).unwrap_or_else(|e| panic!("encode {v}: {e}"));
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let back = decode_value(&mut r).unwrap_or_else(|e| panic!("decode {v}: {e}"));
            assert!(r.is_empty(), "trailing bytes after {v}");
            // eqv? distinguishes NaN-vs-NaN (#t after canonicalization)
            // and 0.0-vs--0.0 (#f), so it is exactly the right notion of
            // "the constant survived"
            assert!(
                v.eqv(&back) || v.equal(&back),
                "round trip changed {} into {}",
                v.write_string(),
                back.write_string()
            );
        }
        // the signed-zero split and NaN canonicalization specifically
        let mut w = WireWriter::new();
        encode_value(&mut w, &Value::Float(-0.0)).unwrap();
        let bytes = w.into_bytes();
        let back = decode_value(&mut WireReader::new(&bytes)).unwrap();
        assert!(back.eqv(&Value::Float(-0.0)), "-0.0 must stay -0.0");
        assert!(!back.eqv(&Value::Float(0.0)), "-0.0 must not become 0.0");
        let mut w = WireWriter::new();
        encode_value(&mut w, &Value::Float(f64::from_bits(0x7FF8_DEAD_BEEF_0001))).unwrap();
        let bytes = w.into_bytes();
        let back = decode_value(&mut WireReader::new(&bytes)).unwrap();
        assert!(
            back.eqv(&Value::Float(f64::NAN)),
            "every NaN decodes to the canonical NaN"
        );
    }

    #[test]
    fn proto_round_trips() {
        let inner = Rc::new(Proto {
            name: Some(Symbol::intern("inner")),
            arity: Arity::at_least(1),
            nlocals: 3,
            captures: vec![CaptureSrc::Local(0), CaptureSrc::Capture(1)],
            code: vec![Op::LoadCapture(0), Op::Return],
            consts: vec![Value::Int(42), Value::string("hi")],
            protos: vec![],
        });
        let outer = Proto {
            name: None,
            arity: Arity::exactly(0),
            nlocals: 1,
            captures: vec![],
            code: vec![Op::MakeClosure(0), Op::Call(0), Op::Return],
            consts: vec![Value::Void, Value::Float(1.5)],
            protos: vec![inner],
        };
        let code = ModuleCode {
            top: Rc::new(outer),
            global_names: vec![Symbol::intern("f"), Symbol::fresh("g")],
            defined: vec![1],
        };
        let mut w = WireWriter::new();
        encode_module_code(&mut w, &code).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_module_code(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(
            format!("{back:?}"),
            format!("{:?}", {
                // the gensym decodes to an interned symbol with the same
                // printed name, so a Debug comparison is exactly right
                code
            })
        );
    }

    #[test]
    fn unserializable_const_is_an_error_not_a_panic() {
        let p = Proto {
            name: None,
            arity: Arity::exactly(0),
            nlocals: 0,
            captures: vec![],
            code: vec![Op::Return],
            consts: vec![Value::Box(std::rc::Rc::new(std::cell::RefCell::new(
                Value::Int(1),
            )))],
            protos: vec![],
        };
        let mut w = WireWriter::new();
        assert!(encode_proto(&mut w, &p).is_err());
    }

    #[test]
    fn expr_and_form_round_trip() {
        let lam = CoreExpr::Lambda(LambdaCore {
            name: Some(Symbol::intern("f")),
            formals: vec![Symbol::intern("x")],
            rest: Some(Symbol::intern("rest")),
            body: vec![CoreExpr::If(
                Box::new(CoreExpr::Var(Symbol::intern("x"), span())),
                Box::new(CoreExpr::Quote(Value::Int(1))),
                Box::new(CoreExpr::App(
                    Box::new(CoreExpr::Var(Symbol::intern("g"), span())),
                    vec![CoreExpr::Quote(Value::Bool(true))],
                    span(),
                )),
            )],
            span: span(),
        });
        let form = CoreForm::Define(Symbol::intern("f"), lam, span());
        let mut w = WireWriter::new();
        encode_form(&mut w, &form).unwrap();
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_form(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(format!("{back:?}"), format!("{form:?}"));
    }

    #[test]
    fn truncated_and_corrupt_input_errors_cleanly() {
        let p = Proto {
            name: Some(Symbol::intern("t")),
            arity: Arity::exactly(2),
            nlocals: 2,
            captures: vec![CaptureSrc::Local(1)],
            code: vec![Op::LoadLocal(0), Op::LoadLocal(1), Op::Add2, Op::Return],
            consts: vec![Value::Symbol(Symbol::intern("sym"))],
            protos: vec![],
        };
        let mut w = WireWriter::new();
        encode_proto(&mut w, &p).unwrap();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(decode_proto(&mut r).is_err(), "truncation at {cut}");
        }
        // an unknown opcode tag must be a structured error
        let mut r = WireReader::new(&[0xff]);
        assert!(decode_op(&mut r).is_err());
    }
}
