//! The core-forms intermediate representation.
//!
//! The macro expander reduces every program to the small core grammar of
//! the paper's figure 1 (`quote`, `if`, `#%plain-lambda`, `#%plain-app`,
//! `define-values`, plus `begin`, `let-values`, `letrec-values`, `set!`,
//! and `quote-syntax`). The typechecker and optimizer pattern-match that
//! grammar *as syntax*; the execution engines parse it once into this
//! structured [`CoreExpr`] form.
//!
//! Precondition: the input is fully expanded and **alpha-renamed** — every
//! binding in the program has a globally unique symbol (the expander
//! guarantees this; paper §4.3 relies on the same invariant).

use lagoon_runtime::{RtError, Value};
use lagoon_syntax::{Datum, Span, Symbol, SynData, Syntax};

/// A fully-expanded expression.
#[derive(Clone, Debug)]
pub enum CoreExpr {
    /// A constant from `quote` or a self-evaluating literal.
    Quote(Value),
    /// A syntax-object constant from `quote-syntax` (phase-1 code).
    QuoteSyntax(Syntax),
    /// A variable reference (local, captured, or module-level).
    Var(Symbol, Span),
    /// Two- or three-armed conditional.
    If(Box<CoreExpr>, Box<CoreExpr>, Box<CoreExpr>),
    /// Sequencing; the last expression's value is the result.
    Begin(Vec<CoreExpr>),
    /// A procedure.
    Lambda(LambdaCore),
    /// Parallel bindings.
    Let(Vec<(Symbol, CoreExpr)>, Vec<CoreExpr>),
    /// Mutually recursive bindings.
    Letrec(Vec<(Symbol, CoreExpr)>, Vec<CoreExpr>),
    /// Assignment.
    Set(Symbol, Box<CoreExpr>, Span),
    /// Application.
    App(Box<CoreExpr>, Vec<CoreExpr>, Span),
}

/// The body of a `#%plain-lambda`.
#[derive(Clone, Debug)]
pub struct LambdaCore {
    /// Inferred name, for error messages.
    pub name: Option<Symbol>,
    /// Required formal parameters.
    pub formals: Vec<Symbol>,
    /// Rest parameter, if the formals were an improper list.
    pub rest: Option<Symbol>,
    /// Body expressions.
    pub body: Vec<CoreExpr>,
    /// Source location.
    pub span: Span,
}

/// A top-level (module-level) form.
#[derive(Clone, Debug)]
pub enum CoreForm {
    /// `(define-values (id) expr)`.
    Define(Symbol, CoreExpr, Span),
    /// An expression evaluated for effect/value.
    Expr(CoreExpr),
}

/// An error while parsing expanded syntax into core forms — always a bug
/// in the producer of the syntax, not in user code.
pub fn ir_error(message: impl Into<String>, stx: &Syntax) -> RtError {
    RtError::new(
        lagoon_runtime::Kind::Internal,
        format!("{}: {}", message.into(), stx),
    )
    .with_span(stx.span())
}

fn head_symbol(stx: &Syntax) -> Option<Symbol> {
    stx.as_list()?.first()?.sym()
}

/// Parses one fully-expanded module-level form.
///
/// # Errors
///
/// Returns an internal error if the syntax does not conform to the core
/// grammar.
pub fn parse_form(stx: &Syntax) -> Result<CoreForm, RtError> {
    if head_symbol(stx) == Some(Symbol::intern("define-values")) {
        let items = stx
            .as_list()
            .ok_or_else(|| ir_error("malformed define-values", stx))?;
        if items.len() != 3 {
            return Err(ir_error("malformed define-values", stx));
        }
        let ids = items[1]
            .as_list()
            .ok_or_else(|| ir_error("define-values: expected (id)", stx))?;
        if ids.len() != 1 {
            return Err(ir_error(
                "define-values: Lagoon supports single-value definitions only",
                stx,
            ));
        }
        let id = ids[0]
            .sym()
            .ok_or_else(|| ir_error("define-values: expected identifier", &ids[0]))?;
        let mut rhs = parse_expr(&items[2])?;
        name_lambda(&mut rhs, id);
        Ok(CoreForm::Define(id, rhs, stx.span()))
    } else {
        Ok(CoreForm::Expr(parse_expr(stx)?))
    }
}

fn name_lambda(e: &mut CoreExpr, name: Symbol) {
    if let CoreExpr::Lambda(lam) = e {
        lam.name.get_or_insert(name);
    }
}

fn parse_body(items: &[Syntax], ctx: &Syntax) -> Result<Vec<CoreExpr>, RtError> {
    if items.is_empty() {
        return Err(ir_error("empty body", ctx));
    }
    items.iter().map(parse_expr).collect()
}

fn parse_bindings(stx: &Syntax) -> Result<Vec<(Symbol, CoreExpr)>, RtError> {
    let clauses = stx
        .as_list()
        .ok_or_else(|| ir_error("expected binding list", stx))?;
    clauses
        .iter()
        .map(|clause| {
            let parts = clause
                .as_list()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ir_error("expected [(id) rhs] binding", clause))?;
            let ids = parts[0]
                .as_list()
                .filter(|ids| ids.len() == 1)
                .ok_or_else(|| ir_error("expected single-identifier binding", clause))?;
            let id = ids[0]
                .sym()
                .ok_or_else(|| ir_error("expected identifier", &ids[0]))?;
            let mut rhs = parse_expr(&parts[1])?;
            name_lambda(&mut rhs, id);
            Ok((id, rhs))
        })
        .collect()
}

/// Parses one fully-expanded expression.
///
/// # Errors
///
/// Returns an internal error if the syntax does not conform to the core
/// grammar — the expander should never produce such syntax.
pub fn parse_expr(stx: &Syntax) -> Result<CoreExpr, RtError> {
    match stx.e() {
        SynData::Atom(Datum::Symbol(s)) => Ok(CoreExpr::Var(*s, stx.span())),
        SynData::Atom(d) => Ok(CoreExpr::Quote(Value::from_datum(d))),
        SynData::Vector(_) | SynData::Improper(_, _) => Err(ir_error("not a core expression", stx)),
        SynData::List(items) => {
            let head = items.first().and_then(Syntax::sym);
            let head_name =
                |f: &mut dyn FnMut(Option<&str>) -> Result<CoreExpr, RtError>| match head {
                    Some(s) => s.with_str(|name| f(Some(name))),
                    None => f(None),
                };
            head_name(&mut |head| match head {
                Some("quote") if items.len() == 2 => {
                    Ok(CoreExpr::Quote(Value::from_datum(&items[1].to_datum())))
                }
                Some("quote-syntax") if items.len() == 2 => {
                    Ok(CoreExpr::QuoteSyntax(items[1].clone()))
                }
                Some("if") if items.len() == 4 => Ok(CoreExpr::If(
                    Box::new(parse_expr(&items[1])?),
                    Box::new(parse_expr(&items[2])?),
                    Box::new(parse_expr(&items[3])?),
                )),
                Some("begin") if items.len() >= 2 => {
                    Ok(CoreExpr::Begin(parse_body(&items[1..], stx)?))
                }
                Some("#%plain-lambda") if items.len() >= 3 => {
                    let (formals, rest) = parse_formals(&items[1])?;
                    Ok(CoreExpr::Lambda(LambdaCore {
                        name: None,
                        formals,
                        rest,
                        body: parse_body(&items[2..], stx)?,
                        span: stx.span(),
                    }))
                }
                Some("let-values") if items.len() >= 3 => Ok(CoreExpr::Let(
                    parse_bindings(&items[1])?,
                    parse_body(&items[2..], stx)?,
                )),
                Some("letrec-values") if items.len() >= 3 => Ok(CoreExpr::Letrec(
                    parse_bindings(&items[1])?,
                    parse_body(&items[2..], stx)?,
                )),
                Some("set!") if items.len() == 3 => {
                    let id = items[1]
                        .sym()
                        .ok_or_else(|| ir_error("set!: expected identifier", &items[1]))?;
                    Ok(CoreExpr::Set(
                        id,
                        Box::new(parse_expr(&items[2])?),
                        stx.span(),
                    ))
                }
                Some("#%plain-app") if items.len() >= 2 => {
                    let f = parse_expr(&items[1])?;
                    let args = items[2..]
                        .iter()
                        .map(parse_expr)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(CoreExpr::App(Box::new(f), args, stx.span()))
                }
                _ => Err(ir_error("unknown core form", stx)),
            })
        }
    }
}

fn parse_formals(stx: &Syntax) -> Result<(Vec<Symbol>, Option<Symbol>), RtError> {
    let id_of = |s: &Syntax| {
        s.sym()
            .ok_or_else(|| ir_error("formals: expected identifier", s))
    };
    match stx.e() {
        SynData::List(ids) => Ok((ids.iter().map(id_of).collect::<Result<Vec<_>, _>>()?, None)),
        SynData::Improper(ids, tail) => Ok((
            ids.iter().map(id_of).collect::<Result<Vec<_>, _>>()?,
            Some(id_of(tail)?),
        )),
        SynData::Atom(Datum::Symbol(rest)) => Ok((Vec::new(), Some(*rest))),
        _ => Err(ir_error("malformed formals", stx)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_syntax::read_syntax;

    fn parse(src: &str) -> CoreExpr {
        parse_expr(&read_syntax(src, "<t>").unwrap()).unwrap()
    }

    #[test]
    fn literals_and_vars() {
        assert!(matches!(parse("42"), CoreExpr::Quote(v) if v.as_int() == Some(42)));
        assert!(matches!(parse("x"), CoreExpr::Var(_, _)));
        assert!(matches!(parse("(quote (1 2))"), CoreExpr::Quote(_)));
        assert!(matches!(
            parse("(quote-syntax (f x))"),
            CoreExpr::QuoteSyntax(_)
        ));
    }

    #[test]
    fn lambda_forms() {
        let e = parse("(#%plain-lambda (x y) (#%plain-app x y))");
        match e {
            CoreExpr::Lambda(lam) => {
                assert_eq!(lam.formals.len(), 2);
                assert!(lam.rest.is_none());
            }
            _ => panic!("not a lambda"),
        }
        let e = parse("(#%plain-lambda (x . rest) x)");
        match e {
            CoreExpr::Lambda(lam) => {
                assert_eq!(lam.formals.len(), 1);
                assert_eq!(lam.rest.unwrap().as_str(), "rest");
            }
            _ => panic!("not a lambda"),
        }
        let e = parse("(#%plain-lambda args args)");
        match e {
            CoreExpr::Lambda(lam) => {
                assert!(lam.formals.is_empty());
                assert!(lam.rest.is_some());
            }
            _ => panic!("not a lambda"),
        }
    }

    #[test]
    fn let_forms() {
        let e = parse("(let-values ([(x) 1] [(y) 2]) (#%plain-app + x y))");
        match e {
            CoreExpr::Let(bindings, body) => {
                assert_eq!(bindings.len(), 2);
                assert_eq!(body.len(), 1);
            }
            _ => panic!("not a let"),
        }
    }

    #[test]
    fn define_forms() {
        let f = parse_form(&read_syntax("(define-values (x) 3)", "<t>").unwrap()).unwrap();
        assert!(matches!(f, CoreForm::Define(_, _, _)));
        let f = parse_form(&read_syntax("(#%plain-app f 1)", "<t>").unwrap()).unwrap();
        assert!(matches!(f, CoreForm::Expr(_)));
    }

    #[test]
    fn lambda_rhs_gets_named() {
        let f =
            parse_form(&read_syntax("(define-values (f) (#%plain-lambda (x) x))", "<t>").unwrap())
                .unwrap();
        match f {
            CoreForm::Define(_, CoreExpr::Lambda(lam), _) => {
                assert_eq!(lam.name.unwrap().as_str(), "f")
            }
            _ => panic!("wrong parse"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_expr(&read_syntax("(if x y)", "<t>").unwrap()).is_err());
        assert!(parse_expr(&read_syntax("(unknown-form 1)", "<t>").unwrap()).is_err());
        assert!(parse_expr(&read_syntax("(#%plain-lambda (x))", "<t>").unwrap()).is_err());
        assert!(
            parse_form(&read_syntax("(define-values (a b) 1)", "<t>").unwrap()).is_err(),
            "multi-value defines are not supported"
        );
    }
}
