//! The tree-walking AST interpreter.
//!
//! This is Lagoon's reference engine: simple, obviously correct, and slow.
//! It serves two roles:
//!
//! 1. **Phase-1 evaluation.** Macro transformers are Lagoon procedures run
//!    at compile time; the expander evaluates them with this interpreter.
//! 2. **Comparator engine.** The benchmark harness runs every program on
//!    this engine, the bytecode VM, and the VM-plus-optimizer, standing in
//!    for the multi-compiler spread of the paper's figures (see DESIGN.md).
//!
//! Tail calls are iterative ([`Interp::apply`] loops), so tail-recursive
//! hosted loops run in constant Rust stack.

use crate::engine::{apply_contracted, is_apply_native, splice_apply_args, Engine};
use crate::ir::{CoreExpr, CoreForm, LambdaCore};
use lagoon_runtime::{Arity, Closure, Kind, RtError, Value};
use lagoon_syntax::{Span, Symbol};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

// Non-tail evaluation recurses through the Rust stack, so each level is
// charged against the shared host-recursion counter in
// `lagoon_diag::limits` (shared with the expander, which can be beneath
// us on the same stack during phase-1 evaluation).
fn enter_eval(span: Option<Span>) -> Result<lagoon_diag::limits::HostDepth, RtError> {
    lagoon_diag::limits::enter_interp().map_err(|e| {
        let mut err = RtError::from(e);
        if let Some(sp) = span {
            err = err.with_span(sp);
        }
        err
    })
}

fn expr_span(expr: &CoreExpr) -> Option<Span> {
    match expr {
        CoreExpr::Var(_, span) | CoreExpr::Set(_, _, span) | CoreExpr::App(_, _, span) => {
            Some(*span)
        }
        _ => None,
    }
}

/// A chained environment frame mapping (globally unique) symbols to
/// values.
#[derive(Debug, Default)]
pub struct Env {
    vars: RefCell<HashMap<Symbol, Value>>,
    parent: Option<Rc<Env>>,
}

impl Env {
    /// A fresh root environment.
    pub fn root() -> Rc<Env> {
        Rc::new(Env::default())
    }

    /// A child frame of `parent`.
    pub fn child(parent: &Rc<Env>) -> Rc<Env> {
        Rc::new(Env {
            vars: RefCell::new(HashMap::new()),
            parent: Some(parent.clone()),
        })
    }

    /// Defines (or redefines) `name` in this frame.
    pub fn define(&self, name: Symbol, value: Value) {
        self.vars.borrow_mut().insert(name, value);
    }

    /// Looks `name` up through the chain.
    pub fn lookup(&self, name: Symbol) -> Option<Value> {
        if let Some(v) = self.vars.borrow().get(&name) {
            return Some(v.clone());
        }
        self.parent.as_ref()?.lookup(name)
    }

    /// Mutates the nearest binding of `name`; false if unbound.
    pub fn assign(&self, name: Symbol, value: Value) -> bool {
        if let Some(slot) = self.vars.borrow_mut().get_mut(&name) {
            *slot = value;
            return true;
        }
        match &self.parent {
            Some(p) => p.assign(name, value),
            None => false,
        }
    }

    /// Installs a batch of bindings (e.g. the primitive library).
    pub fn install(&self, bindings: impl IntoIterator<Item = (Symbol, Value)>) {
        let mut vars = self.vars.borrow_mut();
        for (k, v) in bindings {
            vars.insert(k, v);
        }
    }
}

/// The AST interpreter engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct Interp;

enum Step {
    Done(Value),
    Call(Value, Vec<Value>),
}

fn split_body(body: &[CoreExpr]) -> Result<(&CoreExpr, &[CoreExpr]), RtError> {
    body.split_last()
        .ok_or_else(|| RtError::new(Kind::Internal, "empty body in core form"))
}

impl Interp {
    /// Evaluates a sequence of top-level forms; returns the last
    /// expression's value. `define-values` forms bind in `globals`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn eval_forms(&self, forms: &[CoreForm], globals: &Rc<Env>) -> Result<Value, RtError> {
        let mut last = Value::Void;
        for form in forms {
            match form {
                CoreForm::Define(name, rhs, _) => {
                    let v = self.eval(rhs, globals)?;
                    globals.define(*name, v);
                    last = Value::Void;
                }
                CoreForm::Expr(e) => last = self.eval(e, globals)?,
            }
        }
        Ok(last)
    }

    /// Evaluates one expression to a value.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (unbound variables, type errors, …).
    pub fn eval(&self, expr: &CoreExpr, env: &Rc<Env>) -> Result<Value, RtError> {
        let _depth = enter_eval(expr_span(expr))?;
        match self.eval_step(expr, env)? {
            Step::Done(v) => Ok(v),
            Step::Call(f, args) => self.apply(&f, &args),
        }
    }

    /// Evaluates with the *tail position* returned as a pending call
    /// instead of being performed, enabling the iterative trampoline in
    /// [`Interp::apply`].
    fn eval_step(&self, expr: &CoreExpr, env: &Rc<Env>) -> Result<Step, RtError> {
        let mut expr = expr;
        let mut env = env.clone();
        loop {
            if let Err(e) = lagoon_diag::limits::interp_step() {
                let mut err = RtError::from(e);
                if let Some(sp) = expr_span(expr) {
                    err = err.with_span(sp);
                }
                return Err(err);
            }
            match expr {
                CoreExpr::Quote(v) => return Ok(Step::Done(v.clone())),
                CoreExpr::QuoteSyntax(s) => return Ok(Step::Done(Value::Syntax(s.clone()))),
                CoreExpr::Var(name, span) => {
                    return env
                        .lookup(*name)
                        .map(Step::Done)
                        .ok_or_else(|| RtError::unbound(*name).with_span(*span))
                }
                CoreExpr::If(c, t, e) => {
                    expr = if self.eval(c, &env)?.is_truthy() {
                        t
                    } else {
                        e
                    };
                }
                CoreExpr::Begin(body) => {
                    let (last, init) = split_body(body)?;
                    for e in init {
                        self.eval(e, &env)?;
                    }
                    expr = last;
                }
                CoreExpr::Lambda(lam) => {
                    return Ok(Step::Done(make_closure(lam, &env)));
                }
                CoreExpr::Let(bindings, body) => {
                    let frame = Env::child(&env);
                    for (name, rhs) in bindings {
                        let v = self.eval(rhs, &env)?;
                        frame.define(*name, v);
                    }
                    env = frame;
                    let (last, init) = split_body(body)?;
                    for e in init {
                        self.eval(e, &env)?;
                    }
                    expr = last;
                }
                CoreExpr::Letrec(bindings, body) => {
                    let frame = Env::child(&env);
                    for (name, _) in bindings {
                        frame.define(*name, Value::Void);
                    }
                    for (name, rhs) in bindings {
                        let v = self.eval(rhs, &frame)?;
                        frame.define(*name, v);
                    }
                    env = frame;
                    let (last, init) = split_body(body)?;
                    for e in init {
                        self.eval(e, &env)?;
                    }
                    expr = last;
                }
                CoreExpr::Set(name, rhs, span) => {
                    let v = self.eval(rhs, &env)?;
                    if !env.assign(*name, v) {
                        return Err(RtError::unbound(*name).with_span(*span));
                    }
                    return Ok(Step::Done(Value::Void));
                }
                CoreExpr::App(f, args, span) => {
                    let fv = self.eval(f, &env)?;
                    let mut argv = Vec::with_capacity(args.len());
                    for a in args {
                        argv.push(self.eval(a, &env)?);
                    }
                    if !fv.is_procedure() {
                        return Err(RtError::type_error(format!(
                            "application: not a procedure: {}",
                            fv.write_string()
                        ))
                        .with_span(*span));
                    }
                    return Ok(Step::Call(fv, argv));
                }
            }
        }
    }
}

fn make_closure(lam: &LambdaCore, env: &Rc<Env>) -> Value {
    let arity = if lam.rest.is_some() {
        Arity::at_least(lam.formals.len())
    } else {
        Arity::exactly(lam.formals.len())
    };
    Value::Closure(Rc::new(Closure {
        name: lam.name,
        arity,
        code: Rc::new(lam.clone()),
        env: env.clone(),
    }))
}

impl Engine for Interp {
    fn apply(&self, f: &Value, args: &[Value]) -> Result<Value, RtError> {
        let mut f = f.clone();
        let mut args = args.to_vec();
        loop {
            if let Some(n) = f.as_native() {
                if is_apply_native(&f) {
                    let (nf, nargs) = splice_apply_args(&args)?;
                    f = nf;
                    args = nargs;
                    continue;
                }
                if crate::engine::is_cwv_native(&f) {
                    let (nf, nargs) = crate::engine::splice_cwv_args(self, &args)?;
                    f = nf;
                    args = nargs;
                    continue;
                }
                if !n.arity.accepts(args.len()) {
                    return Err(RtError::arity(format!(
                        "{}: expects {} argument(s), got {}",
                        n.name,
                        n.arity,
                        args.len()
                    )));
                }
                lagoon_diag::limits::prim_call().map_err(RtError::from)?;
                return (n.f)(&args);
            }
            if let Some(c) = f.as_contracted() {
                return apply_contracted(self, c, &args);
            }
            if let Some(c) = f.as_closure() {
                let lam = c.code.clone().downcast::<LambdaCore>().map_err(|_| {
                    RtError::new(
                        Kind::Internal,
                        "closure from a different engine applied by the interpreter",
                    )
                })?;
                let parent = c.env.clone().downcast::<Env>().map_err(|_| {
                    RtError::new(Kind::Internal, "closure environment has the wrong shape")
                })?;
                if !c.arity.accepts(args.len()) {
                    // as_str (allocating) is fine here: error path only
                    return Err(RtError::arity(format!(
                        "{}: expects {} argument(s), got {}",
                        c.name
                            .map(|n| n.as_str())
                            .unwrap_or_else(|| "#<procedure>".into()),
                        c.arity,
                        args.len()
                    )));
                }
                let frame = Env::child(&parent);
                for (name, v) in lam.formals.iter().zip(args.iter()) {
                    frame.define(*name, v.clone());
                }
                if let Some(rest) = lam.rest {
                    frame.define(rest, Value::list(args[lam.formals.len()..].to_vec()));
                }
                let (last, init) = split_body(&lam.body)?;
                for e in init {
                    self.eval(e, &frame)?;
                }
                match self.eval_step(last, &frame)? {
                    Step::Done(v) => return Ok(v),
                    Step::Call(nf, nargs) => {
                        f = nf;
                        args = nargs;
                    }
                }
                continue;
            }
            return Err(RtError::type_error(format!(
                "application: not a procedure: {}",
                f.write_string()
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_form;
    use lagoon_syntax::read_all;

    fn run(src: &str) -> Result<Value, RtError> {
        let globals = Env::root();
        globals.install(lagoon_runtime::prim::primitives());
        globals.install([
            crate::engine::apply_placeholder(),
            crate::engine::cwv_placeholder(),
        ]);
        let forms = read_all(src, "<t>")
            .unwrap()
            .iter()
            .map(parse_form)
            .collect::<Result<Vec<_>, _>>()?;
        Interp.eval_forms(&forms, &globals)
    }

    #[test]
    fn literals_and_prims() {
        assert_eq!(run("(#%plain-app + 1 2)").unwrap().as_int(), Some(3));
        assert!(run("(quote (1 2))").unwrap().as_pair().is_some());
        assert_eq!(run("(if #f 1 2)").unwrap().as_int(), Some(2));
    }

    #[test]
    fn lambda_and_application() {
        let v = run("(#%plain-app (#%plain-lambda (x y) (#%plain-app * x y)) 6 7)").unwrap();
        assert_eq!(v.as_int(), Some(42));
    }

    #[test]
    fn closures_capture() {
        let v = run(
            "(define-values (make-adder) (#%plain-lambda (n) (#%plain-lambda (m) (#%plain-app + n m))))
             (define-values (add3) (#%plain-app make-adder 3))
             (#%plain-app add3 4)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(7));
    }

    #[test]
    fn rest_arguments() {
        let v = run("(#%plain-app (#%plain-lambda (x . rest) rest) 1 2 3)").unwrap();
        assert_eq!(v.list_to_vec().unwrap().len(), 2);
    }

    #[test]
    fn let_and_letrec() {
        let v = run("(let-values ([(x) 2] [(y) 3]) (#%plain-app + x y))").unwrap();
        assert_eq!(v.as_int(), Some(5));
        let v = run(
            "(letrec-values ([(even?) (#%plain-lambda (n) (if (#%plain-app = n 0) #t (#%plain-app odd? (#%plain-app - n 1))))]
                             [(odd?) (#%plain-lambda (n) (if (#%plain-app = n 0) #f (#%plain-app even? (#%plain-app - n 1))))])
               (#%plain-app even? 10))",
        )
        .unwrap();
        assert!(v.is_truthy());
    }

    #[test]
    fn set_mutates() {
        let v = run("(define-values (x) 1)
             (set! x 5)
             x")
        .unwrap();
        assert_eq!(v.as_int(), Some(5));
        assert!(run("(set! nope 1)").is_err());
    }

    #[test]
    fn tail_recursion_is_constant_stack() {
        // one million iterations: would overflow the Rust stack if tail
        // calls consumed frames
        let v = run(
            "(define-values (loop)
               (#%plain-lambda (n acc)
                 (if (#%plain-app = n 0) acc (#%plain-app loop (#%plain-app - n 1) (#%plain-app + acc 1)))))
             (#%plain-app loop 1000000 0)",
        )
        .unwrap();
        assert_eq!(v.as_int(), Some(1_000_000));
    }

    #[test]
    fn apply_spreads() {
        let v = run("(#%plain-app apply + 1 (quote (2 3)))").unwrap();
        assert_eq!(v.as_int(), Some(6));
    }

    #[test]
    fn errors_propagate() {
        assert!(run("(#%plain-app car 5)").is_err());
        assert!(run("unbound-var").is_err());
        assert!(run("(#%plain-app 5 1)").is_err());
        let e = run("(#%plain-app (#%plain-lambda (x) x) 1 2)").unwrap_err();
        assert_eq!(e.kind, Kind::Arity);
    }

    #[test]
    fn begin_sequences() {
        let v = run("(define-values (b) (#%plain-app box 0))
             (begin (#%plain-app set-box! b 1) (#%plain-app unbox b))")
        .unwrap();
        assert_eq!(v.as_int(), Some(1));
    }
}
