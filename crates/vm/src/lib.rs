//! # lagoon-vm
//!
//! Lagoon's execution engines over the fully-expanded core-forms grammar:
//!
//! * [`ir`] — the structured core-forms IR parsed from expanded syntax;
//! * [`interp`] — a tree-walking reference interpreter (also used for
//!   phase-1 macro-transformer evaluation);
//! * [`compile`] + [`bytecode`] + [`machine`] — a bytecode compiler and
//!   stack VM whose instruction set includes both generic
//!   (tag-dispatching) and `unsafe-*` type-specialized operations. The
//!   specialized instructions are the backend channel the paper's
//!   type-driven optimizer communicates through (§7.1).
//! * [`engine`] — the engine abstraction and the contract-checked
//!   application shared by both engines (paper §6).

#![warn(missing_docs)]
// panic-free core: unwrap/expect in non-test code must be justified
// with an explicit #[allow] (CI promotes these to errors)
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod bytecode;
pub mod compile;
#[cfg(feature = "vm-counters")]
pub mod counters;
pub mod engine;
pub mod interp;
pub mod ir;
pub mod machine;
pub mod peephole;
#[cfg(feature = "vm-profile")]
pub mod profile;

pub mod codec;

pub use compile::Compiler;
pub use engine::{apply_placeholder, cwv_placeholder, Engine};
pub use interp::{Env, Interp};
pub use ir::{parse_expr, parse_form, CoreExpr, CoreForm, LambdaCore};
pub use machine::{Globals, Vm, VmEnv};
