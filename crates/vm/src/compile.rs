//! The bytecode compiler: core forms → [`Proto`]s.
//!
//! Responsibilities:
//!
//! * slot assignment for locals, capture threading for free variables,
//!   global-slot layout for everything else;
//! * assignment conversion — variables that are `set!` (and all
//!   `letrec`-bound variables) live in boxes, so capture-by-value closures
//!   observe mutation;
//! * **primitive specialization** — a call to a known primitive (generic
//!   like `+`, or unsafe like `unsafe-fl+`) with a matching argument count
//!   compiles to a dedicated instruction instead of a procedure call. The
//!   `unsafe-*` instructions skip tag dispatch entirely; this is the
//!   backend channel the paper's optimizer communicates through (§7.1).
//!
//! Precondition (guaranteed by the expander): all bindings are globally
//! uniquely named, so a reference spelled `+` can only denote the base
//! environment's `+`.

use crate::bytecode::{specialized_op, CaptureSrc, ModuleCode, Op, Proto};
use crate::ir::{CoreExpr, CoreForm, LambdaCore};
use lagoon_runtime::{Arity, Kind, RtError, Value};
use lagoon_syntax::Symbol;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

#[derive(Debug)]
struct FnScope {
    name: Option<Symbol>,
    arity: Arity,
    locals: HashMap<Symbol, u32>,
    nlocals: u32,
    capture_names: Vec<Symbol>,
    capture_srcs: Vec<CaptureSrc>,
    code: Vec<Op>,
    consts: Vec<Value>,
    protos: Vec<Rc<Proto>>,
}

impl FnScope {
    fn new(name: Option<Symbol>, arity: Arity) -> FnScope {
        FnScope {
            name,
            arity,
            locals: HashMap::new(),
            nlocals: 0,
            capture_names: Vec::new(),
            capture_srcs: Vec::new(),
            code: Vec::new(),
            consts: Vec::new(),
            protos: Vec::new(),
        }
    }

    fn alloc_local(&mut self, sym: Symbol) -> u32 {
        let slot = self.nlocals;
        self.nlocals += 1;
        self.locals.insert(sym, slot);
        slot
    }

    fn add_const(&mut self, v: Value) -> u32 {
        let idx = self.consts.len() as u32;
        self.consts.push(v);
        idx
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.code.len() as u32;
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn finish(self) -> Proto {
        Proto {
            name: self.name,
            arity: self.arity,
            nlocals: self.nlocals,
            captures: self.capture_srcs,
            code: self.code,
            consts: self.consts,
            protos: self.protos,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Resolved {
    Local(u32),
    Capture(u32),
    Global(u32),
}

/// The bytecode compiler. One instance compiles one module.
#[derive(Debug)]
pub struct Compiler {
    fns: Vec<FnScope>,
    globals: HashMap<Symbol, u32>,
    global_names: Vec<Symbol>,
    defined: HashSet<Symbol>,
    mutated: HashSet<Symbol>,
}

impl Compiler {
    /// Compiles a module body to bytecode.
    ///
    /// # Errors
    ///
    /// Returns an internal error for malformed input (which the expander
    /// should never produce).
    pub fn compile_module(forms: &[CoreForm]) -> Result<ModuleCode, RtError> {
        let mut c = Compiler {
            fns: vec![FnScope::new(None, Arity::exactly(0))],
            globals: HashMap::new(),
            global_names: Vec::new(),
            defined: HashSet::new(),
            mutated: HashSet::new(),
        };
        for form in forms {
            match form {
                CoreForm::Define(name, rhs, _) => {
                    c.defined.insert(*name);
                    collect_mutated(rhs, &mut c.mutated);
                }
                CoreForm::Expr(e) => collect_mutated(e, &mut c.mutated),
            }
        }
        if forms.is_empty() {
            c.fns[0].emit(Op::Void);
        }
        for (i, form) in forms.iter().enumerate() {
            let last = i + 1 == forms.len();
            match form {
                CoreForm::Define(name, rhs, _) => {
                    c.compile_expr(rhs, false)?;
                    let g = c.global_index(*name);
                    c.top().emit(Op::StoreGlobal(g));
                    c.top().emit(Op::Void);
                }
                CoreForm::Expr(e) => {
                    c.compile_expr(e, false)?;
                }
            }
            if !last {
                c.top().emit(Op::Pop);
            }
        }
        c.top().emit(Op::Return);
        let top = c
            .fns
            .pop()
            .ok_or_else(|| RtError::new(Kind::Internal, "compiler lost its top scope"))?;
        let top = Rc::new(top.finish());
        // sorted so the artifact encoding is deterministic: HashSet
        // iteration order varies with interner state, and `.lagc`
        // bytes must be a pure function of module content
        let mut defined: Vec<u32> = c
            .defined
            .iter()
            .filter_map(|s| c.globals.get(s).copied())
            .collect();
        defined.sort_unstable();
        let code = ModuleCode {
            top,
            global_names: c.global_names,
            defined,
        };
        // the superinstruction pass runs here so every compilation path
        // (module pipeline, prelude, tests) shares one choke point; the
        // thread-local knob is the `--no-peephole` escape hatch
        if crate::peephole::enabled() {
            Ok(crate::peephole::optimize_module(code))
        } else {
            crate::peephole::clear_stats();
            Ok(code)
        }
    }

    // `fns` is non-empty between the pushes in `compile_module` /
    // `compile_lambda` and their matching pops, which bracket every call
    #[allow(clippy::expect_used)]
    fn top(&mut self) -> &mut FnScope {
        self.fns.last_mut().expect("function scope")
    }

    fn global_index(&mut self, sym: Symbol) -> u32 {
        if let Some(&i) = self.globals.get(&sym) {
            return i;
        }
        let i = self.global_names.len() as u32;
        self.global_names.push(sym);
        self.globals.insert(sym, i);
        i
    }

    fn resolve(&mut self, sym: Symbol) -> Resolved {
        let depth = self.fns.len() - 1;
        if let Some(&slot) = self.fns[depth].locals.get(&sym) {
            return Resolved::Local(slot);
        }
        // find in an enclosing scope
        let mut found: Option<(usize, CaptureSrc)> = None;
        for d in (0..depth).rev() {
            if let Some(&slot) = self.fns[d].locals.get(&sym) {
                found = Some((d, CaptureSrc::Local(slot)));
                break;
            }
            if let Some(pos) = self.fns[d].capture_names.iter().position(|n| *n == sym) {
                found = Some((d, CaptureSrc::Capture(pos as u32)));
                break;
            }
        }
        match found {
            None => Resolved::Global(self.global_index(sym)),
            Some((d, mut src)) => {
                // thread the capture through every intermediate function
                for f in d + 1..=depth {
                    let scope = &mut self.fns[f];
                    let idx = match scope.capture_names.iter().position(|n| *n == sym) {
                        Some(i) => i as u32,
                        None => {
                            scope.capture_names.push(sym);
                            scope.capture_srcs.push(src);
                            (scope.capture_names.len() - 1) as u32
                        }
                    };
                    src = CaptureSrc::Capture(idx);
                }
                Resolved::Capture(match src {
                    CaptureSrc::Capture(i) => i,
                    CaptureSrc::Local(_) => unreachable!("threaded capture"),
                })
            }
        }
    }

    fn emit_load(&mut self, sym: Symbol) {
        let boxed = self.mutated.contains(&sym);
        let r = self.resolve(sym);
        let scope = self.top();
        match r {
            Resolved::Local(i) => {
                scope.emit(Op::LoadLocal(i));
                if boxed {
                    scope.emit(Op::BoxGet);
                }
            }
            Resolved::Capture(i) => {
                scope.emit(Op::LoadCapture(i));
                if boxed {
                    scope.emit(Op::BoxGet);
                }
            }
            Resolved::Global(i) => {
                scope.emit(Op::LoadGlobal(i));
            }
        }
    }

    fn compile_body(&mut self, body: &[CoreExpr], tail: bool) -> Result<(), RtError> {
        let (last, init) = body
            .split_last()
            .ok_or_else(|| RtError::new(Kind::Internal, "empty body in core form"))?;
        for e in init {
            self.compile_expr(e, false)?;
            self.top().emit(Op::Pop);
        }
        self.compile_expr(last, tail)
    }

    fn compile_lambda(&mut self, lam: &LambdaCore) -> Result<(), RtError> {
        let arity = if lam.rest.is_some() {
            Arity::at_least(lam.formals.len())
        } else {
            Arity::exactly(lam.formals.len())
        };
        self.fns.push(FnScope::new(lam.name, arity));
        for f in &lam.formals {
            self.top().alloc_local(*f);
        }
        if let Some(rest) = lam.rest {
            self.top().alloc_local(rest);
        }
        // assignment-convert mutated parameters
        let param_count = lam.formals.len() + usize::from(lam.rest.is_some());
        let params: Vec<Symbol> = lam.formals.iter().copied().chain(lam.rest).collect();
        debug_assert_eq!(params.len(), param_count);
        for (i, p) in params.iter().enumerate() {
            if self.mutated.contains(p) {
                let scope = self.top();
                scope.emit(Op::LoadLocal(i as u32));
                scope.emit(Op::BoxNew);
                scope.emit(Op::StoreLocal(i as u32));
            }
        }
        self.compile_body(&lam.body, true)?;
        self.top().emit(Op::Return);
        let proto = self
            .fns
            .pop()
            .ok_or_else(|| RtError::new(Kind::Internal, "compiler lost its lambda scope"))?;
        let proto = Rc::new(proto.finish());
        let scope = self.top();
        let idx = scope.protos.len() as u32;
        scope.protos.push(proto);
        scope.emit(Op::MakeClosure(idx));
        Ok(())
    }

    fn compile_expr(&mut self, expr: &CoreExpr, tail: bool) -> Result<(), RtError> {
        match expr {
            CoreExpr::Quote(v) => {
                let k = self.top().add_const(v.clone());
                self.top().emit(Op::Const(k));
            }
            CoreExpr::QuoteSyntax(s) => {
                let k = self.top().add_const(Value::Syntax(s.clone()));
                self.top().emit(Op::Const(k));
            }
            CoreExpr::Var(sym, _) => self.emit_load(*sym),
            CoreExpr::If(c, t, e) => {
                self.compile_expr(c, false)?;
                let jf = self.top().emit(Op::JumpIfFalse(0));
                self.compile_expr(t, tail)?;
                let j = self.top().emit(Op::Jump(0));
                self.top().patch_jump(jf);
                self.compile_expr(e, tail)?;
                self.top().patch_jump(j);
            }
            CoreExpr::Begin(body) => self.compile_body(body, tail)?,
            CoreExpr::Lambda(lam) => self.compile_lambda(lam)?,
            CoreExpr::Let(bindings, body) => {
                for (name, rhs) in bindings {
                    self.compile_expr(rhs, false)?;
                    if self.mutated.contains(name) {
                        self.top().emit(Op::BoxNew);
                    }
                    let slot = self.top().alloc_local(*name);
                    self.top().emit(Op::StoreLocal(slot));
                }
                self.compile_body(body, tail)?;
            }
            CoreExpr::Letrec(bindings, body) => {
                // all letrec-bound names are boxed (collect_mutated marks them)
                let mut slots = Vec::with_capacity(bindings.len());
                for (name, _) in bindings {
                    let scope = self.top();
                    scope.emit(Op::Void);
                    scope.emit(Op::BoxNew);
                    let slot = self.top().alloc_local(*name);
                    self.top().emit(Op::StoreLocal(slot));
                    slots.push(slot);
                }
                for ((_, rhs), slot) in bindings.iter().zip(&slots) {
                    self.top().emit(Op::LoadLocal(*slot));
                    self.compile_expr(rhs, false)?;
                    let scope = self.top();
                    scope.emit(Op::BoxSet);
                    scope.emit(Op::Pop);
                }
                self.compile_body(body, tail)?;
            }
            CoreExpr::Set(sym, rhs, _span) => match self.resolve(*sym) {
                Resolved::Local(i) => {
                    self.top().emit(Op::LoadLocal(i));
                    self.compile_expr(rhs, false)?;
                    self.top().emit(Op::BoxSet);
                }
                Resolved::Capture(i) => {
                    self.top().emit(Op::LoadCapture(i));
                    self.compile_expr(rhs, false)?;
                    self.top().emit(Op::BoxSet);
                }
                Resolved::Global(i) => {
                    self.compile_expr(rhs, false)?;
                    let scope = self.top();
                    scope.emit(Op::StoreGlobal(i));
                    scope.emit(Op::Void);
                }
            },
            CoreExpr::App(f, args, _) => {
                // primitive specialization: a head that is a free reference
                // to a known primitive with a matching argument count
                if let CoreExpr::Var(sym, _) = &**f {
                    let is_local = self
                        .fns
                        .iter()
                        .any(|s| s.locals.contains_key(sym) || s.capture_names.contains(sym));
                    if !is_local && !self.defined.contains(sym) {
                        // unboxed fusion for nested unsafe-fl trees (the
                        // §7.1 unboxing channel); single operations use
                        // the plain specialized instruction
                        if self.fl_tree_weight(expr) >= 2 {
                            if let Some(()) = self.try_compile_fl_root(expr)? {
                                return Ok(());
                            }
                        }
                        if let Some(op) = sym.with_str(|n| specialized_op(n, args.len())) {
                            for a in args {
                                self.compile_expr(a, false)?;
                            }
                            self.top().emit(op);
                            return Ok(());
                        }
                    }
                }
                self.compile_expr(f, false)?;
                for a in args {
                    self.compile_expr(a, false)?;
                }
                let n = u16::try_from(args.len())
                    .map_err(|_| RtError::new(Kind::Internal, "too many arguments in one call"))?;
                self.top()
                    .emit(if tail { Op::TailCall(n) } else { Op::Call(n) });
            }
        }
        Ok(())
    }
}

fn fl_binary_op(name: &str) -> Option<Op> {
    Some(match name {
        "unsafe-fl+" => Op::FlSAdd,
        "unsafe-fl-" => Op::FlSSub,
        "unsafe-fl*" => Op::FlSMul,
        "unsafe-fl/" => Op::FlSDiv,
        "unsafe-flmin" => Op::FlSMin,
        "unsafe-flmax" => Op::FlSMax,
        _ => return None,
    })
}

fn fl_unary_op(name: &str) -> Option<Op> {
    Some(match name {
        "unsafe-flsqrt" => Op::FlSSqrt,
        "unsafe-flabs" => Op::FlSAbs,
        _ => return None,
    })
}

fn fl_compare_op(name: &str) -> Option<Op> {
    Some(match name {
        "unsafe-fl<" => Op::FlSLt,
        "unsafe-fl<=" => Op::FlSLe,
        "unsafe-fl>" => Op::FlSGt,
        "unsafe-fl>=" => Op::FlSGe,
        "unsafe-fl=" => Op::FlSEq,
        _ => return None,
    })
}

impl Compiler {
    /// How many fusible `unsafe-fl*` operations this expression tree
    /// contains at its top (fusion only pays off for nested trees).
    fn fl_tree_weight(&self, expr: &CoreExpr) -> usize {
        match expr {
            CoreExpr::App(f, args, _) => {
                let Some(sym) = (match &**f {
                    CoreExpr::Var(sym, _) => Some(*sym),
                    _ => None,
                }) else {
                    return 0;
                };
                let is_fl = sym.with_str(|name| {
                    (args.len() == 2
                        && (fl_binary_op(name).is_some() || fl_compare_op(name).is_some()))
                        || (args.len() == 1
                            && (fl_unary_op(name).is_some() || name == "unsafe-fx->fl"))
                });
                if !is_fl {
                    return 0;
                }
                1 + args.iter().map(|a| self.fl_tree_weight(a)).sum::<usize>()
            }
            _ => 0,
        }
    }

    /// Compiles a root `unsafe-fl*` application as fused unboxed code.
    /// Numeric roots end with `FlBox`; comparison roots push the boolean
    /// directly. Returns `Ok(None)` if the root is not fusible.
    fn try_compile_fl_root(&mut self, expr: &CoreExpr) -> Result<Option<()>, RtError> {
        let CoreExpr::App(f, args, _) = expr else {
            return Ok(None);
        };
        let CoreExpr::Var(sym, _) = &**f else {
            return Ok(None);
        };
        let (compare, binary, unary) =
            sym.with_str(|name| (fl_compare_op(name), fl_binary_op(name), fl_unary_op(name)));
        if args.len() == 2 {
            if let Some(op) = compare {
                self.compile_fl_operand(&args[0])?;
                self.compile_fl_operand(&args[1])?;
                self.top().emit(op);
                return Ok(Some(()));
            }
            if let Some(op) = binary {
                self.compile_fl_operand(&args[0])?;
                self.compile_fl_operand(&args[1])?;
                let scope = self.top();
                scope.emit(op);
                scope.emit(Op::FlBox);
                return Ok(Some(()));
            }
        }
        if args.len() == 1 {
            if let Some(op) = unary {
                self.compile_fl_operand(&args[0])?;
                let scope = self.top();
                scope.emit(op);
                scope.emit(Op::FlBox);
                return Ok(Some(()));
            }
        }
        Ok(None)
    }

    /// Compiles an operand of a fused float expression, leaving one
    /// unboxed `f64` on the float stack.
    fn compile_fl_operand(&mut self, expr: &CoreExpr) -> Result<(), RtError> {
        match expr {
            CoreExpr::Quote(v) if v.is_float() => {
                let k = self.top().add_const(v.clone());
                self.top().emit(Op::FlPushConst(k));
                return Ok(());
            }
            CoreExpr::Var(sym, _) if !self.mutated.contains(sym) => {
                // only pure locals/captures stay unboxed; globals and
                // boxed variables fall through to the generic path
                match self.resolve(*sym) {
                    Resolved::Local(i) => {
                        self.top().emit(Op::FlPushLocal(i));
                        return Ok(());
                    }
                    Resolved::Capture(i) => {
                        self.top().emit(Op::FlPushCapture(i));
                        return Ok(());
                    }
                    Resolved::Global(_) => {}
                }
            }
            CoreExpr::App(f, args, _) => {
                if let CoreExpr::Var(sym, _) = &**f {
                    let is_local = self
                        .fns
                        .iter()
                        .any(|s| s.locals.contains_key(sym) || s.capture_names.contains(sym));
                    if !is_local && !self.defined.contains(sym) {
                        let (binary, unary, fx_to_fl) = sym.with_str(|name| {
                            (
                                fl_binary_op(name),
                                fl_unary_op(name),
                                name == "unsafe-fx->fl",
                            )
                        });
                        if args.len() == 2 {
                            if let Some(op) = binary {
                                self.compile_fl_operand(&args[0])?;
                                self.compile_fl_operand(&args[1])?;
                                self.top().emit(op);
                                return Ok(());
                            }
                        }
                        if args.len() == 1 {
                            if let Some(op) = unary {
                                self.compile_fl_operand(&args[0])?;
                                self.top().emit(op);
                                return Ok(());
                            }
                            if fx_to_fl {
                                self.compile_expr(&args[0], false)?;
                                self.top().emit(Op::FlUnboxFx);
                                return Ok(());
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        // generic fallback: compute boxed, then move to the float stack
        self.compile_expr(expr, false)?;
        self.top().emit(Op::FlUnbox);
        Ok(())
    }
}

/// Collects every `set!` target and `letrec`-bound name — the variables
/// that must live in boxes.
fn collect_mutated(expr: &CoreExpr, out: &mut HashSet<Symbol>) {
    match expr {
        CoreExpr::Quote(_) | CoreExpr::QuoteSyntax(_) | CoreExpr::Var(_, _) => {}
        CoreExpr::If(c, t, e) => {
            collect_mutated(c, out);
            collect_mutated(t, out);
            collect_mutated(e, out);
        }
        CoreExpr::Begin(body) => body.iter().for_each(|e| collect_mutated(e, out)),
        CoreExpr::Lambda(lam) => lam.body.iter().for_each(|e| collect_mutated(e, out)),
        CoreExpr::Let(bindings, body) => {
            for (_, rhs) in bindings {
                collect_mutated(rhs, out);
            }
            body.iter().for_each(|e| collect_mutated(e, out));
        }
        CoreExpr::Letrec(bindings, body) => {
            for (name, rhs) in bindings {
                out.insert(*name);
                collect_mutated(rhs, out);
            }
            body.iter().for_each(|e| collect_mutated(e, out));
        }
        CoreExpr::Set(name, rhs, _) => {
            out.insert(*name);
            collect_mutated(rhs, out);
        }
        CoreExpr::App(f, args, _) => {
            collect_mutated(f, out);
            args.iter().for_each(|a| collect_mutated(a, out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_form;
    use lagoon_syntax::read_all;

    fn compile(src: &str) -> ModuleCode {
        let forms = read_all(src, "<t>")
            .unwrap()
            .iter()
            .map(parse_form)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        Compiler::compile_module(&forms).unwrap()
    }

    #[test]
    fn constants_and_globals() {
        let m = compile("(define-values (x) 3) x");
        assert!(m.global_names.contains(&Symbol::from("x")));
        assert_eq!(m.defined.len(), 1);
        let d = m.top.disassemble();
        assert!(d.contains("StoreGlobal"));
        assert!(d.contains("LoadGlobal"));
    }

    #[test]
    fn generic_primitives_specialize() {
        let m = compile("(#%plain-app + 1 2)");
        assert!(m.top.code.contains(&Op::Add2));
        assert!(!m.top.disassemble().contains("Call"));
    }

    #[test]
    fn unsafe_primitives_specialize() {
        let m = compile("(#%plain-app unsafe-fl+ 1.0 2.0)");
        assert!(m.top.code.contains(&Op::FlAdd));
    }

    #[test]
    fn variadic_calls_do_not_specialize() {
        let m = compile("(#%plain-app + 1 2 3)");
        assert!(!m.top.code.contains(&Op::Add2));
        assert!(m.top.code.iter().any(|op| matches!(op, Op::Call(3))));
    }

    #[test]
    fn locally_shadowed_primitives_do_not_specialize() {
        // a local named `+` must be called as a closure, not as Add2
        let m = compile("(#%plain-app (#%plain-lambda (+) (#%plain-app + 1 2)) car)");
        let inner = &m.top.protos[0];
        assert!(!inner.code.contains(&Op::Add2));
    }

    #[test]
    fn module_defined_primitive_name_does_not_specialize() {
        let m = compile("(define-values (+) 1) (#%plain-app + 1 2)");
        assert!(!m.top.code.contains(&Op::Add2));
    }

    #[test]
    fn tail_calls_are_marked() {
        let m = compile("(define-values (loop) (#%plain-lambda (n) (#%plain-app loop n)))");
        let inner = &m.top.protos[0];
        assert!(inner.code.iter().any(|op| matches!(op, Op::TailCall(1))));
    }

    #[test]
    fn captures_thread_through_nested_lambdas() {
        let m = compile("(#%plain-lambda (x) (#%plain-lambda () (#%plain-lambda () x)))");
        let outer = &m.top.protos[0];
        let mid = &outer.protos[0];
        let inner = &mid.protos[0];
        assert_eq!(mid.captures, vec![CaptureSrc::Local(0)]);
        assert_eq!(inner.captures, vec![CaptureSrc::Capture(0)]);
    }

    #[test]
    fn mutated_locals_are_boxed() {
        let m = compile("(let-values ([(x) 1]) (begin (set! x 2) x))");
        let d = m.top.disassemble();
        assert!(d.contains("BoxNew"));
        assert!(d.contains("BoxSet"));
        assert!(d.contains("BoxGet"));
    }

    #[test]
    fn unmutated_locals_are_not_boxed() {
        let m = compile("(let-values ([(x) 1]) x)");
        let d = m.top.disassemble();
        assert!(!d.contains("Box"));
    }
}

#[cfg(test)]
mod fusion_tests {
    use super::*;
    use crate::ir::parse_form;
    use lagoon_syntax::read_all;

    fn compile(src: &str) -> ModuleCode {
        let forms = read_all(src, "<t>")
            .unwrap()
            .iter()
            .map(parse_form)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        Compiler::compile_module(&forms).unwrap()
    }

    #[test]
    fn nested_fl_trees_fuse() {
        // (unsafe-flsqrt (unsafe-fl+ (unsafe-fl* x x) (unsafe-fl* y y)))
        let m = compile(
            "(#%plain-lambda (x y)
               (#%plain-app unsafe-flsqrt
                 (#%plain-app unsafe-fl+
                   (#%plain-app unsafe-fl* x x)
                   (#%plain-app unsafe-fl* y y))))",
        );
        let inner = &m.top.protos[0];
        assert!(inner.code.contains(&Op::FlPushLocal(0)));
        assert!(inner.code.contains(&Op::FlSMul));
        assert!(inner.code.contains(&Op::FlSAdd));
        assert!(inner.code.contains(&Op::FlSSqrt));
        assert!(inner.code.contains(&Op::FlBox));
        // no boxed float instructions remain
        assert!(!inner.code.contains(&Op::FlMul));
        assert!(!inner.code.contains(&Op::FlAdd));
    }

    #[test]
    fn single_fl_ops_stay_unfused() {
        let m = compile("(#%plain-lambda (x y) (#%plain-app unsafe-fl+ x y))");
        let inner = &m.top.protos[0];
        assert!(inner.code.contains(&Op::FlAdd));
        assert!(!inner.code.contains(&Op::FlSAdd));
    }

    #[test]
    fn fused_comparisons_produce_booleans() {
        let m = compile(
            "(#%plain-lambda (x y)
               (#%plain-app unsafe-fl< (#%plain-app unsafe-fl* x x) y))",
        );
        let inner = &m.top.protos[0];
        assert!(inner.code.contains(&Op::FlSLt));
        assert!(!inner.code.contains(&Op::FlBox), "comparison must not box");
    }

    #[test]
    fn generic_subexpressions_enter_via_unbox() {
        // (unsafe-fl+ (f x) (unsafe-fl* x x)) — (f x) is a real call
        let m = compile(
            "(define-values (f) (#%plain-lambda (x) x))
             (#%plain-lambda (x)
               (#%plain-app unsafe-fl+ (#%plain-app f x) (#%plain-app unsafe-fl* x x)))",
        );
        let inner = &m.top.protos[1];
        assert!(inner.code.contains(&Op::FlUnbox));
        assert!(inner.code.contains(&Op::FlSAdd));
    }

    #[test]
    fn fx_to_fl_leaves_convert_unboxed() {
        let m = compile(
            "(#%plain-lambda (i y)
               (#%plain-app unsafe-fl+ (#%plain-app unsafe-fx->fl i) y))",
        );
        let inner = &m.top.protos[0];
        assert!(inner.code.contains(&Op::FlUnboxFx));
    }

    #[test]
    fn generic_float_code_is_never_fused() {
        let m = compile("(#%plain-lambda (x y) (#%plain-app + (#%plain-app * x x) y))");
        let inner = &m.top.protos[0];
        assert!(!inner
            .code
            .iter()
            .any(|op| matches!(op, Op::FlSAdd | Op::FlSMul | Op::FlPushLocal(_))));
    }
}
