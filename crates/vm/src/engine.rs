//! The engine abstraction and contract-checking application.
//!
//! Lagoon has two execution engines — the [tree-walking
//! interpreter](crate::interp) and the [bytecode VM](crate::machine). Both
//! implement [`Engine::apply`], and both route applications of
//! [`Contracted`] procedures through [`apply_contracted`] so that
//! typed/untyped boundary checks behave identically regardless of engine
//! (paper §6.1).

use lagoon_runtime::{apply_contract, Contract, Contracted, RtError, Value};

/// Anything that can apply a Lagoon procedure to arguments.
pub trait Engine {
    /// Applies `f` to `args`, running to completion.
    ///
    /// # Errors
    ///
    /// Propagates any runtime error raised by the procedure.
    fn apply(&self, f: &Value, args: &[Value]) -> Result<Value, RtError>;
}

/// Applies a contract-wrapped procedure: checks each argument against the
/// domain contracts (blaming the *negative* party — the client — on
/// failure), calls the inner procedure, then checks the result against the
/// range contract (blaming the *positive* party — the implementation).
///
/// Higher-order domain contracts swap the blame parties, as usual for
/// function contracts.
///
/// # Errors
///
/// Returns a contract violation with the appropriate blame, or any error
/// raised by the wrapped procedure.
pub fn apply_contracted(
    engine: &dyn Engine,
    c: &Contracted,
    args: &[Value],
) -> Result<Value, RtError> {
    if lagoon_diag::enabled() {
        lagoon_diag::emit(lagoon_diag::Event::ContractCrossing {
            export: c.inner.procedure_name(),
            positive: c.positive,
            negative: c.negative,
        });
    }
    let Contract::Function(doms, rng) = &c.contract else {
        return Err(RtError::new(
            lagoon_runtime::Kind::Internal,
            "contracted value does not carry a function contract",
        ));
    };
    if doms.len() != args.len() {
        return Err(RtError::contract(
            c.negative,
            format!(
                "expected {} argument(s) per contract {}, got {}",
                doms.len(),
                c.contract,
                args.len()
            ),
        ));
    }
    let mut checked = Vec::with_capacity(args.len());
    for (dom, arg) in doms.iter().zip(args) {
        // Blame parties swap for the domain: the client (negative) promised
        // the argument satisfies `dom`.
        checked.push(apply_contract(arg.clone(), dom, c.negative, c.positive)?);
    }
    let result = engine.apply(&c.inner, &checked)?;
    apply_contract(result, rng, c.positive, c.negative)
}

/// Flattens an `apply` invocation: `(apply f a b '(c d))` becomes
/// `f` applied to `[a b c d]`.
///
/// # Errors
///
/// Returns a type error if the last argument is not a proper list or too
/// few arguments were supplied.
pub fn splice_apply_args(args: &[Value]) -> Result<(Value, Vec<Value>), RtError> {
    let (f, rest) = args
        .split_first()
        .ok_or_else(|| RtError::arity("apply: expects a procedure and a list"))?;
    let (last, mids) = rest
        .split_last()
        .ok_or_else(|| RtError::arity("apply: expects a final argument list"))?;
    let tail = last.list_to_vec().ok_or_else(|| {
        RtError::type_error(format!(
            "apply: last argument must be a list, got {}",
            last.write_string()
        ))
    })?;
    let mut all = mids.to_vec();
    all.extend(tail);
    Ok((f.clone(), all))
}

/// True when `v` is the distinguished `apply` primitive, which engines must
/// intercept (its behaviour needs the engine itself).
pub fn is_apply_native(v: &Value) -> bool {
    v.as_native()
        .is_some_and(|n| n.name == lagoon_syntax::Symbol::intern("apply"))
}

/// The placeholder `apply` primitive; engines intercept applications of it
/// before the fallback body (which only reports a misuse) can run.
pub fn apply_placeholder() -> (lagoon_syntax::Symbol, Value) {
    let name = lagoon_syntax::Symbol::intern("apply");
    (
        name,
        lagoon_runtime::Native::value("apply", lagoon_runtime::Arity::at_least(2), |_| {
            Err(RtError::new(
                lagoon_runtime::Kind::Internal,
                "apply must be handled by an execution engine",
            ))
        }),
    )
}

/// Reduces a `call-with-values` invocation to an ordinary call: runs the
/// producer through `engine`, unpacks its (possibly multiple) result, and
/// returns the consumer with the unpacked argument list.
///
/// # Errors
///
/// Propagates producer errors; errors on an argument-count mismatch.
pub fn splice_cwv_args(
    engine: &dyn Engine,
    args: &[Value],
) -> Result<(Value, Vec<Value>), RtError> {
    let [producer, consumer] = args else {
        return Err(RtError::arity(
            "call-with-values: expects a producer and a consumer",
        ));
    };
    let produced = engine.apply(producer, &[])?;
    let vals = if let Some(vs) = produced.as_values() {
        vs.to_vec()
    } else {
        vec![produced]
    };
    Ok((consumer.clone(), vals))
}

/// True when `v` is the distinguished `call-with-values` primitive, which
/// engines must intercept (running the producer needs the engine itself).
pub fn is_cwv_native(v: &Value) -> bool {
    v.as_native()
        .is_some_and(|n| n.name == lagoon_syntax::Symbol::intern("call-with-values"))
}

/// The placeholder `call-with-values` primitive; engines intercept
/// applications of it before the fallback body can run.
pub fn cwv_placeholder() -> (lagoon_syntax::Symbol, Value) {
    let name = lagoon_syntax::Symbol::intern("call-with-values");
    (
        name,
        lagoon_runtime::Native::value(
            "call-with-values",
            lagoon_runtime::Arity::exactly(2),
            |_| {
                Err(RtError::new(
                    lagoon_runtime::Kind::Internal,
                    "call-with-values must be handled by an execution engine",
                ))
            },
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_runtime::{Arity, Native};

    struct NativeOnly;
    impl Engine for NativeOnly {
        fn apply(&self, f: &Value, args: &[Value]) -> Result<Value, RtError> {
            if let Some(n) = f.as_native() {
                (n.f)(args)
            } else if let Some(c) = f.as_contracted() {
                apply_contracted(self, c, args)
            } else {
                Err(RtError::type_error("not applicable"))
            }
        }
    }

    fn inc() -> Value {
        Native::value("inc", Arity::exactly(1), |args| {
            lagoon_runtime::number::add(&args[0], &Value::Int(1))
        })
    }

    fn wrap(v: Value, doms: Vec<Contract>, rng: Contract) -> Value {
        apply_contract(
            v,
            &Contract::Function(doms, Box::new(rng)),
            lagoon_syntax::Symbol::from("server"),
            lagoon_syntax::Symbol::from("client"),
        )
        .unwrap()
    }

    #[test]
    fn good_call_passes() {
        let f = wrap(inc(), vec![Contract::Integer], Contract::Integer);
        let r = NativeOnly.apply(&f, &[Value::Int(1)]).unwrap();
        assert_eq!(r.as_int(), Some(2));
    }

    #[test]
    fn bad_argument_blames_client() {
        let f = wrap(inc(), vec![Contract::Integer], Contract::Integer);
        let e = NativeOnly.apply(&f, &[Value::string("no")]).unwrap_err();
        match e.kind {
            lagoon_runtime::Kind::Contract { blame } => {
                assert_eq!(blame.as_str(), "client")
            }
            _ => panic!("expected contract error, got {e}"),
        }
    }

    #[test]
    fn bad_result_blames_server() {
        // server promises a string but returns an integer
        let f = wrap(inc(), vec![Contract::Integer], Contract::Str);
        let e = NativeOnly.apply(&f, &[Value::Int(1)]).unwrap_err();
        match e.kind {
            lagoon_runtime::Kind::Contract { blame } => {
                assert_eq!(blame.as_str(), "server")
            }
            _ => panic!("expected contract error, got {e}"),
        }
    }

    #[test]
    fn arity_mismatch_blames_client() {
        let f = wrap(inc(), vec![Contract::Integer], Contract::Integer);
        let e = NativeOnly.apply(&f, &[]).unwrap_err();
        assert!(matches!(e.kind, lagoon_runtime::Kind::Contract { .. }));
    }

    #[test]
    fn splice_apply() {
        let (f, args) = splice_apply_args(&[
            inc(),
            Value::Int(1),
            Value::list(vec![Value::Int(2), Value::Int(3)]),
        ])
        .unwrap();
        assert!(f.is_procedure());
        assert_eq!(args.len(), 3);
        assert!(splice_apply_args(&[inc(), Value::Int(1)]).is_err());
    }
}
