//! Bytecode definitions.
//!
//! The compiler ([`crate::compile`]) lowers core forms to this instruction
//! set; the machine ([`crate::machine`]) executes it.
//!
//! Two instruction families matter for the paper's story:
//!
//! * **Generic operations** (`Add2`, `Car`, …) perform full tag dispatch
//!   through the numeric tower, with overflow and type checks — the cost
//!   profile of untyped code.
//! * **Specialized operations** (`FlAdd`, `UnsafeCar`, …) assume the
//!   operand tags, skipping dispatch and checks. The compiler emits them
//!   only for calls to the `unsafe-*` primitives, which the type-driven
//!   optimizer inserts after typechecking — “these primitives … serve as
//!   signals to the Racket code generator” (paper §7.1).

use lagoon_runtime::{Arity, Value};
use lagoon_syntax::Symbol;
use std::rc::Rc;

/// Where a closure capture comes from in the *enclosing* frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureSrc {
    /// A local slot of the enclosing frame.
    Local(u32),
    /// A capture of the enclosing closure.
    Capture(u32),
}

/// One bytecode instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Push constant `k`.
    Const(u32),
    /// Push the void value.
    Void,
    /// Push local slot `i`.
    LoadLocal(u32),
    /// Pop into local slot `i`.
    StoreLocal(u32),
    /// Push capture `i`.
    LoadCapture(u32),
    /// Push global `i` (error if undefined).
    LoadGlobal(u32),
    /// Pop into global `i`.
    StoreGlobal(u32),
    /// Unconditional jump to absolute instruction index.
    Jump(u32),
    /// Pop; jump if false.
    JumpIfFalse(u32),
    /// Instantiate child proto `i` as a closure, capturing per its spec.
    MakeClosure(u32),
    /// Call with `n` arguments; stack: `f a1 … an`.
    Call(u16),
    /// Tail call with `n` arguments, replacing the current frame.
    TailCall(u16),
    /// Return the top of stack from the current frame.
    Return,
    /// Discard the top of stack.
    Pop,
    /// Wrap the top of stack in a fresh box.
    BoxNew,
    /// Replace a box on the stack with its contents.
    BoxGet,
    /// Stack `box v` → store `v` in `box`, push void.
    BoxSet,

    // ----- generic (tag-dispatching) fast paths -----
    /// Generic `+` on two operands.
    Add2,
    /// Generic `-`.
    Sub2,
    /// Generic `*`.
    Mul2,
    /// Generic `/`.
    Div2,
    /// Generic `<`.
    Lt2,
    /// Generic `<=`.
    Le2,
    /// Generic `>`.
    Gt2,
    /// Generic `>=`.
    Ge2,
    /// Generic `=`.
    NumEq2,
    /// Generic `add1`.
    Add1,
    /// Generic `sub1`.
    Sub1,
    /// Generic `zero?`.
    ZeroP,
    /// Checked `car`.
    Car,
    /// Checked `cdr`.
    Cdr,
    /// `cons`.
    Cons,
    /// `null?`.
    NullP,
    /// `pair?`.
    PairP,
    /// `not`.
    Not,
    /// `eq?`.
    EqP,
    /// Checked `vector-ref`.
    VectorRef,
    /// Checked `vector-set!`.
    VectorSet,
    /// `vector-length`.
    VectorLength,

    // ----- unsafe specialized instructions -----
    /// `unsafe-fl+`.
    FlAdd,
    /// `unsafe-fl-`.
    FlSub,
    /// `unsafe-fl*`.
    FlMul,
    /// `unsafe-fl/`.
    FlDiv,
    /// `unsafe-fl<`.
    FlLt,
    /// `unsafe-fl<=`.
    FlLe,
    /// `unsafe-fl>`.
    FlGt,
    /// `unsafe-fl>=`.
    FlGe,
    /// `unsafe-fl=`.
    FlEq,
    /// `unsafe-flsqrt`.
    FlSqrt,
    /// `unsafe-flabs`.
    FlAbs,
    /// `unsafe-flmin`.
    FlMin,
    /// `unsafe-flmax`.
    FlMax,
    /// `unsafe-fx+` (wrapping).
    FxAdd,
    /// `unsafe-fx-` (wrapping).
    FxSub,
    /// `unsafe-fx*` (wrapping).
    FxMul,
    /// `unsafe-fx<`.
    FxLt,
    /// `unsafe-fx<=`.
    FxLe,
    /// `unsafe-fx>`.
    FxGt,
    /// `unsafe-fx>=`.
    FxGe,
    /// `unsafe-fx=`.
    FxEq,
    /// `unsafe-fc+`.
    FcAdd,
    /// `unsafe-fc-`.
    FcSub,
    /// `unsafe-fc*`.
    FcMul,
    /// `unsafe-fc/`.
    FcDiv,
    /// `unsafe-fcmagnitude`.
    FcMag,
    /// `unsafe-car`.
    UnsafeCar,
    /// `unsafe-cdr`.
    UnsafeCdr,
    /// `unsafe-vector-ref`.
    UnsafeVectorRef,
    /// `unsafe-vector-set!`.
    UnsafeVectorSet,
    /// `unsafe-vector-length`.
    UnsafeVectorLength,
    /// `unsafe-fx->fl`.
    FxToFl,

    // ----- unboxed float expression fusion -----
    //
    // The compiler fuses trees of `unsafe-fl*` operations into code over a
    // dedicated unboxed `f64` stack, entering through `FlPush*`/`FlUnbox`
    // and leaving through `FlBox`/`FlSCmp*`. This is the backend half of
    // the paper's §7.1 channel: the unsafe primitives "serve as signals to
    // the code generator to guide its unboxing optimizations". Generic
    // operations are never fused — untyped code keeps paying for boxing.
    /// Push local slot `i` onto the float stack (assumed `Float`).
    FlPushLocal(u32),
    /// Push capture `i` onto the float stack (assumed `Float`).
    FlPushCapture(u32),
    /// Push constant `k` onto the float stack (must be a float constant).
    FlPushConst(u32),
    /// Move the top of the value stack onto the float stack (assumed
    /// `Float`; misapplication yields 0.0).
    FlUnbox,
    /// Move the top of the value stack (assumed `Integer`) onto the float
    /// stack, converting.
    FlUnboxFx,
    /// Box the top of the float stack back onto the value stack.
    FlBox,
    /// Unboxed `+` on the float stack.
    FlSAdd,
    /// Unboxed `-`.
    FlSSub,
    /// Unboxed `*`.
    FlSMul,
    /// Unboxed `/`.
    FlSDiv,
    /// Unboxed `sqrt`.
    FlSSqrt,
    /// Unboxed `abs`.
    FlSAbs,
    /// Unboxed `min`.
    FlSMin,
    /// Unboxed `max`.
    FlSMax,
    /// Pop two floats, push a boolean `<` onto the *value* stack.
    FlSLt,
    /// Unboxed `<=` to the value stack.
    FlSLe,
    /// Unboxed `>` to the value stack.
    FlSGt,
    /// Unboxed `>=` to the value stack.
    FlSGe,
    /// Unboxed `=` to the value stack.
    FlSEq,

    // ----- peephole superinstructions -----
    //
    // Emitted only by the [`crate::peephole`] pass, never by the compiler
    // directly. Each is the exact fusion of a two- or three-instruction
    // window and preserves the unfused sequence's stack effect and error
    // behaviour. The `Br*` family fuses a comparison with the
    // `JumpIfFalse` that consumes it: operands are popped exactly as the
    // comparison would pop them, and the jump is taken when the
    // comparison is false.
    /// `Lt2; JumpIfFalse t` — pop two, jump unless `a < b`.
    BrLt2(u32),
    /// `Le2; JumpIfFalse t`.
    BrLe2(u32),
    /// `Gt2; JumpIfFalse t`.
    BrGt2(u32),
    /// `Ge2; JumpIfFalse t`.
    BrGe2(u32),
    /// `NumEq2; JumpIfFalse t`.
    BrNumEq2(u32),
    /// `ZeroP; JumpIfFalse t` — pop one, jump unless it is numeric zero.
    BrZeroP(u32),
    /// `NullP; JumpIfFalse t`.
    BrNullP(u32),
    /// `PairP; JumpIfFalse t`.
    BrPairP(u32),
    /// `FlLt; JumpIfFalse t`.
    BrFlLt(u32),
    /// `FlLe; JumpIfFalse t`.
    BrFlLe(u32),
    /// `FlGt; JumpIfFalse t`.
    BrFlGt(u32),
    /// `FlGe; JumpIfFalse t`.
    BrFlGe(u32),
    /// `FlEq; JumpIfFalse t`.
    BrFlEq(u32),
    /// `FxLt; JumpIfFalse t`.
    BrFxLt(u32),
    /// `FxLe; JumpIfFalse t`.
    BrFxLe(u32),
    /// `FxGt; JumpIfFalse t`.
    BrFxGt(u32),
    /// `FxGe; JumpIfFalse t`.
    BrFxGe(u32),
    /// `FxEq; JumpIfFalse t`.
    BrFxEq(u32),
    /// `FlSLt; JumpIfFalse t` — pop two floats from the float stack.
    BrFlSLt(u32),
    /// `FlSLe; JumpIfFalse t`.
    BrFlSLe(u32),
    /// `FlSGt; JumpIfFalse t`.
    BrFlSGt(u32),
    /// `FlSGe; JumpIfFalse t`.
    BrFlSGe(u32),
    /// `FlSEq; JumpIfFalse t`.
    BrFlSEq(u32),
    /// `LoadLocal i; Car` — push the checked car of local `i`.
    CarL(u32),
    /// `LoadLocal i; Cdr`.
    CdrL(u32),
    /// `LoadLocal i; UnsafeCar`.
    UnsafeCarL(u32),
    /// `LoadLocal i; UnsafeCdr`.
    UnsafeCdrL(u32),
    /// `LoadLocal i; LoadLocal j; Add2` — push `local[i] + local[j]`.
    AddLL(u32, u32),
    /// `LoadLocal i; LoadLocal j; Sub2`.
    SubLL(u32, u32),
    /// `LoadLocal i; LoadLocal j; Mul2`.
    MulLL(u32, u32),
    /// `LoadLocal i; Const k; Add2` — push `local[i] + consts[k]`.
    AddLC(u32, u32),
    /// `LoadLocal i; Const k; Sub2`.
    SubLC(u32, u32),
    /// `LoadLocal i; LoadLocal j; VectorRef`.
    VectorRefLL(u32, u32),
    /// `LoadLocal i; LoadLocal j; FxAdd`.
    FxAddLL(u32, u32),
    /// `LoadLocal i; LoadLocal j; FxSub`.
    FxSubLL(u32, u32),
    /// `LoadLocal i; Const k; FxAdd`.
    FxAddLC(u32, u32),
    /// `LoadLocal i; Const k; FxSub`.
    FxSubLC(u32, u32),
    /// `LoadLocal i; LoadLocal j; UnsafeVectorRef`.
    UnsafeVectorRefLL(u32, u32),
}

/// The coarse cost class of an instruction, for diagnostics: the
/// generic-vs-specialized execution mix is exactly the paper's §7.3
/// story about where the optimizer's speedup comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Stack/frame plumbing: loads, stores, jumps, calls.
    Control,
    /// Tag-dispatching operations with full checks (`Add2`, `Car`, …).
    Generic,
    /// Specialized operations that assume operand tags (`FlAdd`,
    /// `UnsafeCar`, the unboxed `FlS*` family, …).
    Specialized,
}

impl OpClass {
    /// The lower-case display name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Control => "control",
            OpClass::Generic => "generic",
            OpClass::Specialized => "specialized",
        }
    }
}

impl Op {
    /// The instruction mnemonic, ignoring any operand payload.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Const(_) => "Const",
            Op::Void => "Void",
            Op::LoadLocal(_) => "LoadLocal",
            Op::StoreLocal(_) => "StoreLocal",
            Op::LoadCapture(_) => "LoadCapture",
            Op::LoadGlobal(_) => "LoadGlobal",
            Op::StoreGlobal(_) => "StoreGlobal",
            Op::Jump(_) => "Jump",
            Op::JumpIfFalse(_) => "JumpIfFalse",
            Op::MakeClosure(_) => "MakeClosure",
            Op::Call(_) => "Call",
            Op::TailCall(_) => "TailCall",
            Op::Return => "Return",
            Op::Pop => "Pop",
            Op::BoxNew => "BoxNew",
            Op::BoxGet => "BoxGet",
            Op::BoxSet => "BoxSet",
            Op::Add2 => "Add2",
            Op::Sub2 => "Sub2",
            Op::Mul2 => "Mul2",
            Op::Div2 => "Div2",
            Op::Lt2 => "Lt2",
            Op::Le2 => "Le2",
            Op::Gt2 => "Gt2",
            Op::Ge2 => "Ge2",
            Op::NumEq2 => "NumEq2",
            Op::Add1 => "Add1",
            Op::Sub1 => "Sub1",
            Op::ZeroP => "ZeroP",
            Op::Car => "Car",
            Op::Cdr => "Cdr",
            Op::Cons => "Cons",
            Op::NullP => "NullP",
            Op::PairP => "PairP",
            Op::Not => "Not",
            Op::EqP => "EqP",
            Op::VectorRef => "VectorRef",
            Op::VectorSet => "VectorSet",
            Op::VectorLength => "VectorLength",
            Op::FlAdd => "FlAdd",
            Op::FlSub => "FlSub",
            Op::FlMul => "FlMul",
            Op::FlDiv => "FlDiv",
            Op::FlLt => "FlLt",
            Op::FlLe => "FlLe",
            Op::FlGt => "FlGt",
            Op::FlGe => "FlGe",
            Op::FlEq => "FlEq",
            Op::FlSqrt => "FlSqrt",
            Op::FlAbs => "FlAbs",
            Op::FlMin => "FlMin",
            Op::FlMax => "FlMax",
            Op::FxAdd => "FxAdd",
            Op::FxSub => "FxSub",
            Op::FxMul => "FxMul",
            Op::FxLt => "FxLt",
            Op::FxLe => "FxLe",
            Op::FxGt => "FxGt",
            Op::FxGe => "FxGe",
            Op::FxEq => "FxEq",
            Op::FcAdd => "FcAdd",
            Op::FcSub => "FcSub",
            Op::FcMul => "FcMul",
            Op::FcDiv => "FcDiv",
            Op::FcMag => "FcMag",
            Op::UnsafeCar => "UnsafeCar",
            Op::UnsafeCdr => "UnsafeCdr",
            Op::UnsafeVectorRef => "UnsafeVectorRef",
            Op::UnsafeVectorSet => "UnsafeVectorSet",
            Op::UnsafeVectorLength => "UnsafeVectorLength",
            Op::FxToFl => "FxToFl",
            Op::FlPushLocal(_) => "FlPushLocal",
            Op::FlPushCapture(_) => "FlPushCapture",
            Op::FlPushConst(_) => "FlPushConst",
            Op::FlUnbox => "FlUnbox",
            Op::FlUnboxFx => "FlUnboxFx",
            Op::FlBox => "FlBox",
            Op::FlSAdd => "FlSAdd",
            Op::FlSSub => "FlSSub",
            Op::FlSMul => "FlSMul",
            Op::FlSDiv => "FlSDiv",
            Op::FlSSqrt => "FlSSqrt",
            Op::FlSAbs => "FlSAbs",
            Op::FlSMin => "FlSMin",
            Op::FlSMax => "FlSMax",
            Op::FlSLt => "FlSLt",
            Op::FlSLe => "FlSLe",
            Op::FlSGt => "FlSGt",
            Op::FlSGe => "FlSGe",
            Op::FlSEq => "FlSEq",
            Op::BrLt2(_) => "BrLt2",
            Op::BrLe2(_) => "BrLe2",
            Op::BrGt2(_) => "BrGt2",
            Op::BrGe2(_) => "BrGe2",
            Op::BrNumEq2(_) => "BrNumEq2",
            Op::BrZeroP(_) => "BrZeroP",
            Op::BrNullP(_) => "BrNullP",
            Op::BrPairP(_) => "BrPairP",
            Op::BrFlLt(_) => "BrFlLt",
            Op::BrFlLe(_) => "BrFlLe",
            Op::BrFlGt(_) => "BrFlGt",
            Op::BrFlGe(_) => "BrFlGe",
            Op::BrFlEq(_) => "BrFlEq",
            Op::BrFxLt(_) => "BrFxLt",
            Op::BrFxLe(_) => "BrFxLe",
            Op::BrFxGt(_) => "BrFxGt",
            Op::BrFxGe(_) => "BrFxGe",
            Op::BrFxEq(_) => "BrFxEq",
            Op::BrFlSLt(_) => "BrFlSLt",
            Op::BrFlSLe(_) => "BrFlSLe",
            Op::BrFlSGt(_) => "BrFlSGt",
            Op::BrFlSGe(_) => "BrFlSGe",
            Op::BrFlSEq(_) => "BrFlSEq",
            Op::CarL(_) => "CarL",
            Op::CdrL(_) => "CdrL",
            Op::UnsafeCarL(_) => "UnsafeCarL",
            Op::UnsafeCdrL(_) => "UnsafeCdrL",
            Op::AddLL(_, _) => "AddLL",
            Op::SubLL(_, _) => "SubLL",
            Op::MulLL(_, _) => "MulLL",
            Op::AddLC(_, _) => "AddLC",
            Op::SubLC(_, _) => "SubLC",
            Op::VectorRefLL(_, _) => "VectorRefLL",
            Op::FxAddLL(_, _) => "FxAddLL",
            Op::FxSubLL(_, _) => "FxSubLL",
            Op::FxAddLC(_, _) => "FxAddLC",
            Op::FxSubLC(_, _) => "FxSubLC",
            Op::UnsafeVectorRefLL(_, _) => "UnsafeVectorRefLL",
        }
    }

    /// Which [`OpClass`] this instruction belongs to.
    pub fn class(&self) -> OpClass {
        match self {
            Op::Add2
            | Op::Sub2
            | Op::Mul2
            | Op::Div2
            | Op::Lt2
            | Op::Le2
            | Op::Gt2
            | Op::Ge2
            | Op::NumEq2
            | Op::Add1
            | Op::Sub1
            | Op::ZeroP
            | Op::Car
            | Op::Cdr
            | Op::Cons
            | Op::NullP
            | Op::PairP
            | Op::Not
            | Op::EqP
            | Op::VectorRef
            | Op::VectorSet
            | Op::VectorLength
            | Op::BrLt2(_)
            | Op::BrLe2(_)
            | Op::BrGt2(_)
            | Op::BrGe2(_)
            | Op::BrNumEq2(_)
            | Op::BrZeroP(_)
            | Op::BrNullP(_)
            | Op::BrPairP(_)
            | Op::CarL(_)
            | Op::CdrL(_)
            | Op::AddLL(_, _)
            | Op::SubLL(_, _)
            | Op::MulLL(_, _)
            | Op::AddLC(_, _)
            | Op::SubLC(_, _)
            | Op::VectorRefLL(_, _) => OpClass::Generic,
            Op::FlAdd
            | Op::FlSub
            | Op::FlMul
            | Op::FlDiv
            | Op::FlLt
            | Op::FlLe
            | Op::FlGt
            | Op::FlGe
            | Op::FlEq
            | Op::FlSqrt
            | Op::FlAbs
            | Op::FlMin
            | Op::FlMax
            | Op::FxAdd
            | Op::FxSub
            | Op::FxMul
            | Op::FxLt
            | Op::FxLe
            | Op::FxGt
            | Op::FxGe
            | Op::FxEq
            | Op::FcAdd
            | Op::FcSub
            | Op::FcMul
            | Op::FcDiv
            | Op::FcMag
            | Op::UnsafeCar
            | Op::UnsafeCdr
            | Op::UnsafeVectorRef
            | Op::UnsafeVectorSet
            | Op::UnsafeVectorLength
            | Op::FxToFl
            | Op::FlPushLocal(_)
            | Op::FlPushCapture(_)
            | Op::FlPushConst(_)
            | Op::FlUnbox
            | Op::FlUnboxFx
            | Op::FlBox
            | Op::FlSAdd
            | Op::FlSSub
            | Op::FlSMul
            | Op::FlSDiv
            | Op::FlSSqrt
            | Op::FlSAbs
            | Op::FlSMin
            | Op::FlSMax
            | Op::FlSLt
            | Op::FlSLe
            | Op::FlSGt
            | Op::FlSGe
            | Op::FlSEq
            | Op::BrFlLt(_)
            | Op::BrFlLe(_)
            | Op::BrFlGt(_)
            | Op::BrFlGe(_)
            | Op::BrFlEq(_)
            | Op::BrFxLt(_)
            | Op::BrFxLe(_)
            | Op::BrFxGt(_)
            | Op::BrFxGe(_)
            | Op::BrFxEq(_)
            | Op::BrFlSLt(_)
            | Op::BrFlSLe(_)
            | Op::BrFlSGt(_)
            | Op::BrFlSGe(_)
            | Op::BrFlSEq(_)
            | Op::UnsafeCarL(_)
            | Op::UnsafeCdrL(_)
            | Op::FxAddLL(_, _)
            | Op::FxSubLL(_, _)
            | Op::FxAddLC(_, _)
            | Op::FxSubLC(_, _)
            | Op::UnsafeVectorRefLL(_, _) => OpClass::Specialized,
            _ => OpClass::Control,
        }
    }

    /// True for superinstructions produced by the [`crate::peephole`]
    /// pass. The counters report a fusion rate (fused executions over
    /// total executions) from this flag.
    pub fn is_fused(&self) -> bool {
        matches!(
            self,
            Op::BrLt2(_)
                | Op::BrLe2(_)
                | Op::BrGt2(_)
                | Op::BrGe2(_)
                | Op::BrNumEq2(_)
                | Op::BrZeroP(_)
                | Op::BrNullP(_)
                | Op::BrPairP(_)
                | Op::BrFlLt(_)
                | Op::BrFlLe(_)
                | Op::BrFlGt(_)
                | Op::BrFlGe(_)
                | Op::BrFlEq(_)
                | Op::BrFxLt(_)
                | Op::BrFxLe(_)
                | Op::BrFxGt(_)
                | Op::BrFxGe(_)
                | Op::BrFxEq(_)
                | Op::BrFlSLt(_)
                | Op::BrFlSLe(_)
                | Op::BrFlSGt(_)
                | Op::BrFlSGe(_)
                | Op::BrFlSEq(_)
                | Op::CarL(_)
                | Op::CdrL(_)
                | Op::UnsafeCarL(_)
                | Op::UnsafeCdrL(_)
                | Op::AddLL(_, _)
                | Op::SubLL(_, _)
                | Op::MulLL(_, _)
                | Op::AddLC(_, _)
                | Op::SubLC(_, _)
                | Op::VectorRefLL(_, _)
                | Op::FxAddLL(_, _)
                | Op::FxSubLL(_, _)
                | Op::FxAddLC(_, _)
                | Op::FxSubLC(_, _)
                | Op::UnsafeVectorRefLL(_, _)
        )
    }
}

/// A compiled procedure prototype.
#[derive(Debug)]
pub struct Proto {
    /// Name for diagnostics.
    pub name: Option<Symbol>,
    /// Accepted argument counts.
    pub arity: Arity,
    /// Total local slots (params first).
    pub nlocals: u32,
    /// How to build this closure's captures from the enclosing frame.
    pub captures: Vec<CaptureSrc>,
    /// The code.
    pub code: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Child prototypes (for `MakeClosure`).
    pub protos: Vec<Rc<Proto>>,
}

/// A compiled module: a top-level prototype plus the global-slot layout.
#[derive(Debug)]
pub struct ModuleCode {
    /// Code for the module body (zero-argument).
    pub top: Rc<Proto>,
    /// Global slot `i` holds the variable named `global_names[i]`.
    pub global_names: Vec<Symbol>,
    /// Indices of globals defined (not imported) by this module.
    pub defined: Vec<u32>,
}

impl Proto {
    /// A human-readable disassembly, for debugging and tests.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        self.disassemble_into(&mut out, 0);
        out
    }

    fn disassemble_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let _ = writeln!(
            out,
            "{pad}proto {} (arity {}, locals {}, captures {:?})",
            self.name
                .map(|n| n.as_str())
                .unwrap_or_else(|| "<top>".into()),
            self.arity,
            self.nlocals,
            self.captures
        );
        for (i, op) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{pad}  {i:4}: {op:?}");
        }
        for p in &self.protos {
            p.disassemble_into(out, depth + 1);
        }
    }
}

/// Maps an `unsafe-*`/known-primitive name and argument count to a
/// dedicated instruction, if one exists. This is the "signal channel"
/// between the source-level optimizer and the backend.
pub fn specialized_op(name: &str, argc: usize) -> Option<Op> {
    let op = match (name, argc) {
        ("+", 2) => Op::Add2,
        ("-", 2) => Op::Sub2,
        ("*", 2) => Op::Mul2,
        ("/", 2) => Op::Div2,
        ("<", 2) => Op::Lt2,
        ("<=", 2) => Op::Le2,
        (">", 2) => Op::Gt2,
        (">=", 2) => Op::Ge2,
        ("=", 2) => Op::NumEq2,
        ("add1", 1) => Op::Add1,
        ("sub1", 1) => Op::Sub1,
        ("zero?", 1) => Op::ZeroP,
        ("car", 1) => Op::Car,
        ("cdr", 1) => Op::Cdr,
        ("cons", 2) => Op::Cons,
        ("null?", 1) => Op::NullP,
        ("pair?", 1) => Op::PairP,
        ("not", 1) => Op::Not,
        ("eq?", 2) => Op::EqP,
        ("vector-ref", 2) => Op::VectorRef,
        ("vector-set!", 3) => Op::VectorSet,
        ("vector-length", 1) => Op::VectorLength,
        ("unsafe-fl+", 2) => Op::FlAdd,
        ("unsafe-fl-", 2) => Op::FlSub,
        ("unsafe-fl*", 2) => Op::FlMul,
        ("unsafe-fl/", 2) => Op::FlDiv,
        ("unsafe-fl<", 2) => Op::FlLt,
        ("unsafe-fl<=", 2) => Op::FlLe,
        ("unsafe-fl>", 2) => Op::FlGt,
        ("unsafe-fl>=", 2) => Op::FlGe,
        ("unsafe-fl=", 2) => Op::FlEq,
        ("unsafe-flsqrt", 1) => Op::FlSqrt,
        ("unsafe-flabs", 1) => Op::FlAbs,
        ("unsafe-flmin", 2) => Op::FlMin,
        ("unsafe-flmax", 2) => Op::FlMax,
        ("unsafe-fx+", 2) => Op::FxAdd,
        ("unsafe-fx-", 2) => Op::FxSub,
        ("unsafe-fx*", 2) => Op::FxMul,
        ("unsafe-fx<", 2) => Op::FxLt,
        ("unsafe-fx<=", 2) => Op::FxLe,
        ("unsafe-fx>", 2) => Op::FxGt,
        ("unsafe-fx>=", 2) => Op::FxGe,
        ("unsafe-fx=", 2) => Op::FxEq,
        ("unsafe-fc+", 2) => Op::FcAdd,
        ("unsafe-fc-", 2) => Op::FcSub,
        ("unsafe-fc*", 2) => Op::FcMul,
        ("unsafe-fc/", 2) => Op::FcDiv,
        ("unsafe-fcmagnitude", 1) => Op::FcMag,
        ("unsafe-car", 1) => Op::UnsafeCar,
        ("unsafe-cdr", 1) => Op::UnsafeCdr,
        ("unsafe-vector-ref", 2) => Op::UnsafeVectorRef,
        ("unsafe-vector-set!", 3) => Op::UnsafeVectorSet,
        ("unsafe-vector-length", 1) => Op::UnsafeVectorLength,
        ("unsafe-fx->fl", 1) => Op::FxToFl,
        _ => return None,
    };
    Some(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialization_table() {
        assert_eq!(specialized_op("+", 2), Some(Op::Add2));
        assert_eq!(
            specialized_op("+", 3),
            None,
            "variadic + goes through the native"
        );
        assert_eq!(specialized_op("unsafe-fl+", 2), Some(Op::FlAdd));
        assert_eq!(specialized_op("no-such-prim", 1), None);
        assert_eq!(specialized_op("car", 1), Some(Op::Car));
        assert_eq!(specialized_op("car", 2), None);
    }

    #[test]
    fn op_classification() {
        assert_eq!(Op::Add2.class(), OpClass::Generic);
        assert_eq!(Op::Car.class(), OpClass::Generic);
        assert_eq!(Op::FlAdd.class(), OpClass::Specialized);
        assert_eq!(Op::UnsafeCar.class(), OpClass::Specialized);
        assert_eq!(Op::FlSAdd.class(), OpClass::Specialized);
        assert_eq!(Op::FlPushLocal(0).class(), OpClass::Specialized);
        assert_eq!(Op::Call(2).class(), OpClass::Control);
        assert_eq!(Op::Return.class(), OpClass::Control);
        assert_eq!(Op::Const(7).mnemonic(), "Const");
        assert_eq!(Op::FlAdd.mnemonic(), "FlAdd");
    }

    #[test]
    fn disassembly_is_nonempty() {
        let p = Proto {
            name: None,
            arity: Arity::exactly(0),
            nlocals: 0,
            captures: vec![],
            code: vec![Op::Void, Op::Return],
            consts: vec![],
            protos: vec![],
        };
        let d = p.disassemble();
        assert!(d.contains("Void"));
        assert!(d.contains("Return"));
    }
}
