//! Seeded random-program generation for the robustness harness.
//!
//! A [`SplitMix64`] stream drives an S-expression generator that
//! produces small random Lagoon modules — well-formed ones mixing
//! special forms, primitives, literals, and binders, and (at a
//! configurable rate) deliberately malformed text: unterminated
//! strings, unbalanced parens, stray dots, bad `#` dispatches. The
//! fuzz smoke feeds these through reader → expander → typechecker → VM
//! and asserts the pipeline returns a value or a structured error,
//! never panicking or hanging.
//!
//! Everything is deterministic in the seed, so the 10k-input smoke run
//! in CI is reproducible and needs no network or external corpus.

/// The splitmix64 PRNG (Steele–Lea–Vigna): tiny, seedable, and good
/// enough for input generation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniform pick from `items`.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        items[self.below(items.len() as u64) as usize]
    }
}

const LANGS: &[&str] = &["lagoon", "typed/lagoon", "typed/no-opt"];

const HEADS: &[&str] = &[
    "define",
    "lambda",
    "let",
    "letrec",
    "if",
    "begin",
    "when",
    "unless",
    "cond",
    "and",
    "or",
    "quote",
    "set!",
    "let*",
    "define-syntax-rule",
];

const OPS: &[&str] = &[
    "+",
    "-",
    "*",
    "quotient",
    "remainder",
    "<",
    ">",
    "=",
    "<=",
    ">=",
    "cons",
    "car",
    "cdr",
    "list",
    "append",
    "reverse",
    "length",
    "null?",
    "pair?",
    "number?",
    "not",
    "eq?",
    "equal?",
    "vector",
    "vector-ref",
    "vector-length",
    "string-length",
    "string-append",
    "display",
    "max",
    "min",
    "abs",
    "expt",
    "modulo",
    "apply",
    "map",
    "assoc",
    "member",
];

const VARS: &[&str] = &["x", "y", "z", "f", "g", "acc", "lst", "n", "v"];

const GARBAGE: &[&str] = &[
    "\"unterminated",
    "(((",
    ")",
    "#\\",
    "#z",
    "(a . )",
    "(. b)",
    "#(1 2",
    "|weird",
    "(define",
    "'",
    "#;",
    "\u{0}\u{1}",
    "(λ",
];

/// One random module: a `#lang` line plus `1..=max_forms` top-level
/// forms. With `hostile`, roughly one module in six gets raw garbage
/// text spliced in to exercise the reader's error paths.
pub fn gen_module(rng: &mut SplitMix64, max_forms: usize, hostile: bool) -> String {
    let mut out = String::from("#lang ");
    out.push_str(rng.pick(LANGS));
    out.push('\n');
    let forms = 1 + rng.below(max_forms.max(1) as u64);
    for _ in 0..forms {
        if hostile && rng.chance(1, 6) {
            out.push_str(rng.pick(GARBAGE));
        } else {
            gen_form(rng, 0, &mut out);
        }
        out.push('\n');
    }
    out
}

fn gen_form(rng: &mut SplitMix64, depth: u32, out: &mut String) {
    if depth >= 5 || rng.chance(2, 5) {
        gen_atom(rng, out);
        return;
    }
    out.push('(');
    match rng.below(4) {
        // a special form with random innards
        0 => {
            out.push_str(rng.pick(HEADS));
            let n = 1 + rng.below(3);
            for _ in 0..n {
                out.push(' ');
                gen_form(rng, depth + 1, out);
            }
        }
        // a primitive application
        1 => {
            out.push_str(rng.pick(OPS));
            let n = rng.below(4);
            for _ in 0..n {
                out.push(' ');
                gen_form(rng, depth + 1, out);
            }
        }
        // a binding form with plausible shape
        2 => {
            let var = rng.pick(VARS);
            out.push_str("let ((");
            out.push_str(var);
            out.push(' ');
            gen_form(rng, depth + 1, out);
            out.push_str(")) ");
            gen_form(rng, depth + 1, out);
        }
        // a bare application of who-knows-what
        _ => {
            gen_form(rng, depth + 1, out);
            let n = rng.below(3);
            for _ in 0..n {
                out.push(' ');
                gen_form(rng, depth + 1, out);
            }
        }
    }
    out.push(')');
}

fn gen_atom(rng: &mut SplitMix64, out: &mut String) {
    use std::fmt::Write as _;
    match rng.below(8) {
        0 => {
            let _ = write!(out, "{}", rng.next_u64() as i32 as i64);
        }
        1 => {
            let _ = write!(out, "{}.{}", rng.below(1000), rng.below(1000));
        }
        2 => out.push_str(rng.pick(VARS)),
        3 => out.push_str(rng.pick(OPS)),
        4 => out.push_str(if rng.chance(1, 2) { "#t" } else { "#f" }),
        5 => {
            out.push('"');
            for _ in 0..rng.below(6) {
                out.push((b'a' + rng.below(26) as u8) as char);
            }
            out.push('"');
        }
        6 => {
            out.push('\'');
            out.push_str(rng.pick(VARS));
        }
        _ => out.push_str("()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn modules_are_seed_stable() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        assert_eq!(gen_module(&mut a, 4, true), gen_module(&mut b, 4, true));
    }

    #[test]
    fn modules_start_with_a_lang_line() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..50 {
            let m = gen_module(&mut rng, 3, false);
            assert!(m.starts_with("#lang "));
        }
    }
}
