//! Resource budgets (fuel) and fault injection for the pipeline.
//!
//! A [`Limits`] value bounds each stage of compilation and execution:
//! macro-expansion steps and nesting depth, phase-1 (compile-time)
//! evaluation steps, VM/interpreter execution steps, call-stack depth,
//! and an optional wall-clock deadline. The expander, the phase-1
//! evaluator, and both engines draw from thread-local pools installed
//! here; when a pool runs dry they receive a structured [`Exhausted`]
//! describing which budget failed, and surface it as a diagnostic
//! instead of hanging or overflowing the host stack.
//!
//! The same machinery hosts the fault-injection harness: a [`FaultPlan`]
//! arms a one-shot failure at the N-th expansion step, VM step, or
//! primitive call, which the pipeline reports exactly like a budget
//! exhaustion. This is how the robustness suite proves that every
//! mid-pipeline failure path unwinds cleanly.
//!
//! Charging is designed to stay off the hot paths: the VM draws fuel in
//! large chunks through [`vm_take_fuel`] and counts the chunk down in a
//! register-resident local, so the per-opcode cost is one decrement.
//! Installing a fault plan shrinks the granted chunks so the N-th step
//! still fails exactly.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::time::{Duration, Instant};

/// Resource budgets for one compilation-and-execution.
///
/// `u64::MAX` (the default for step budgets) means unlimited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Macro-expansion steps across a module graph's compilation.
    pub max_expansion_steps: u64,
    /// Nesting depth of macro expansion (recursive `expand` calls).
    pub max_expansion_depth: u64,
    /// Phase-1 (compile-time) evaluation steps — transformer bodies,
    /// `begin-for-syntax`, `define-syntax` right-hand sides.
    pub max_phase1_steps: u64,
    /// Run-time execution steps (VM instructions / interpreter nodes).
    pub max_vm_steps: u64,
    /// Call-stack depth (VM frames; host-stack recursion in the
    /// tree-walking interpreter).
    pub max_stack_depth: u64,
    /// Wall-clock budget for one run, checked from the same charge
    /// sites as the step budgets. The concrete deadline is re-anchored
    /// at every [`refill`], so each run gets the full allowance.
    pub timeout: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            // Generous enough for every module in the repo (the largest
            // benchmark expands in ~100k steps) while still bounding a
            // runaway self-expanding macro to well under a second.
            max_expansion_steps: 2_000_000,
            max_expansion_depth: 500,
            max_phase1_steps: 100_000_000,
            max_vm_steps: u64::MAX,
            max_stack_depth: 10_000,
            timeout: None,
        }
    }
}

impl Limits {
    /// Budgets with every limit disabled (the pre-limits behaviour).
    pub fn unlimited() -> Limits {
        Limits {
            max_expansion_steps: u64::MAX,
            max_expansion_depth: u64::MAX,
            max_phase1_steps: u64::MAX,
            max_vm_steps: u64::MAX,
            max_stack_depth: u64::MAX,
            timeout: None,
        }
    }
}

/// Which budget ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// [`Limits::max_expansion_steps`].
    ExpansionSteps,
    /// [`Limits::max_expansion_depth`].
    ExpansionDepth,
    /// [`Limits::max_phase1_steps`].
    Phase1Steps,
    /// [`Limits::max_vm_steps`].
    VmSteps,
    /// [`Limits::max_stack_depth`].
    StackDepth,
    /// [`Limits::timeout`].
    Deadline,
    /// An armed [`FaultPlan`] fired (fault injection, not a real
    /// exhaustion).
    InjectedFault,
}

impl Budget {
    /// Stable lower-case name used in diagnostics and reports.
    pub fn name(self) -> &'static str {
        match self {
            Budget::ExpansionSteps => "expansion-steps",
            Budget::ExpansionDepth => "expansion-depth",
            Budget::Phase1Steps => "phase1-steps",
            Budget::VmSteps => "vm-steps",
            Budget::StackDepth => "stack-depth",
            Budget::Deadline => "deadline",
            Budget::InjectedFault => "injected-fault",
        }
    }
}

/// A structured "resource budget exhausted" failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exhausted {
    /// Which budget ran out.
    pub budget: Budget,
    /// The configured limit that was reached (0 for deadline/fault).
    pub limit: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.budget {
            Budget::ExpansionSteps => {
                write!(f, "macro expansion exceeded {} steps", self.limit)
            }
            Budget::ExpansionDepth => {
                write!(f, "macro expansion exceeded depth {}", self.limit)
            }
            Budget::Phase1Steps => {
                write!(f, "compile-time evaluation exceeded {} steps", self.limit)
            }
            Budget::VmSteps => write!(f, "execution exceeded {} steps", self.limit),
            Budget::StackDepth => {
                write!(f, "stack overflow (depth limit {})", self.limit)
            }
            Budget::Deadline => f.write_str("wall-clock deadline exceeded"),
            Budget::InjectedFault => f.write_str("injected fault"),
        }
    }
}

/// A one-shot injected failure: arm a counter per channel and the
/// matching charge site fails on exactly the N-th event (1-based).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the N-th macro-expansion step.
    pub expansion_step: Option<u64>,
    /// Fail the N-th VM/interpreter execution step.
    pub vm_step: Option<u64>,
    /// Fail the N-th primitive (native) call.
    pub prim_call: Option<u64>,
}

impl FaultPlan {
    /// Derives a plan from `seed`: picks one channel and a trigger point
    /// below `horizon` deterministically (splitmix64).
    pub fn from_seed(seed: u64, horizon: u64) -> FaultPlan {
        let mut rng = crate::gen::SplitMix64::new(seed);
        let n = 1 + rng.below(horizon.max(1));
        match rng.below(3) {
            0 => FaultPlan {
                expansion_step: Some(n),
                ..FaultPlan::default()
            },
            1 => FaultPlan {
                vm_step: Some(n),
                ..FaultPlan::default()
            },
            _ => FaultPlan {
                prim_call: Some(n),
                ..FaultPlan::default()
            },
        }
    }
}

/// How often the cheap step-charging sites consult the wall clock.
const DEADLINE_STRIDE: u64 = 4096;

/// Largest fuel chunk the VM is granted at once; bounds how long the VM
/// runs between deadline checks.
const VM_CHUNK: u64 = 65_536;

struct State {
    limits: Limits,
    deadline: Option<Instant>,
    expansion_steps_left: u64,
    phase1_steps_left: u64,
    vm_steps_left: u64,
    expansion_depth: u64,
    phase1_nesting: u32,
    deadline_stride: u64,
    fault_expansion_left: Option<u64>,
    fault_vm_left: Option<u64>,
    fault_prim_left: Option<u64>,
}

impl State {
    fn new(limits: Limits) -> State {
        State {
            limits,
            deadline: limits.timeout.map(|t| Instant::now() + t),
            expansion_steps_left: limits.max_expansion_steps,
            phase1_steps_left: limits.max_phase1_steps,
            vm_steps_left: limits.max_vm_steps,
            expansion_depth: 0,
            phase1_nesting: 0,
            deadline_stride: DEADLINE_STRIDE,
            fault_expansion_left: None,
            fault_vm_left: None,
            fault_prim_left: None,
        }
    }
}

thread_local! {
    static STATE: RefCell<State> = RefCell::new(State::new(Limits::default()));
    // Fast path for the fault hooks: a single flag read when no plan is
    // armed, so primitive calls stay cheap outside the harness.
    static FAULTS_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Installs `limits` for this thread and refills every pool.
pub fn install(limits: Limits) {
    STATE.with(|s| *s.borrow_mut() = State::new(limits));
}

/// The currently installed limits.
pub fn current() -> Limits {
    STATE.with(|s| s.borrow().limits)
}

/// Refills every pool from the installed limits (call at the top of
/// each embedding entry point so budgets are per-run, not cumulative).
/// Leaves any armed fault plan alone.
pub fn refill() {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let limits = s.limits;
        s.deadline = limits.timeout.map(|t| Instant::now() + t);
        s.expansion_steps_left = limits.max_expansion_steps;
        s.phase1_steps_left = limits.max_phase1_steps;
        s.vm_steps_left = limits.max_vm_steps;
        s.expansion_depth = 0;
        s.deadline_stride = DEADLINE_STRIDE;
    });
}

/// Arms `plan` for this thread (clearing any previous one).
pub fn install_faults(plan: FaultPlan) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.fault_expansion_left = plan.expansion_step;
        s.fault_vm_left = plan.vm_step;
        s.fault_prim_left = plan.prim_call;
    });
    FAULTS_ACTIVE.with(|f| {
        f.set(plan.expansion_step.is_some() || plan.vm_step.is_some() || plan.prim_call.is_some())
    });
}

/// Disarms fault injection for this thread.
pub fn clear_faults() {
    install_faults(FaultPlan::default());
}

fn exhausted(budget: Budget, limit: u64) -> Exhausted {
    Exhausted { budget, limit }
}

fn check_deadline_inner(s: &State) -> Result<(), Exhausted> {
    if let Some(deadline) = s.deadline {
        if Instant::now() >= deadline {
            return Err(exhausted(Budget::Deadline, 0));
        }
    }
    Ok(())
}

/// Explicit deadline check, for sites that do substantial work between
/// step charges.
pub fn check_deadline() -> Result<(), Exhausted> {
    STATE.with(|s| check_deadline_inner(&s.borrow()))
}

/// Charges one macro-expansion step. Checks the deadline every
/// [`DEADLINE_STRIDE`] charges and fires an armed expansion-step fault.
pub fn expansion_step() -> Result<(), Exhausted> {
    expansion_steps(1)
}

/// Charges `n` macro-expansion steps at once. Transcription output is
/// billed by its width (see the expander), so a self-doubling macro
/// exhausts the budget in proportion to the syntax it creates rather
/// than the number of rewrites — the doubling would otherwise build
/// astronomically large syntax within a handful of "steps".
pub fn expansion_steps(n: u64) -> Result<(), Exhausted> {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.expansion_steps_left < n {
            s.expansion_steps_left = 0;
            return Err(exhausted(
                Budget::ExpansionSteps,
                s.limits.max_expansion_steps,
            ));
        }
        s.expansion_steps_left -= n;
        if let Some(n) = s.fault_expansion_left.as_mut() {
            *n = n.saturating_sub(1);
            if *n == 0 {
                s.fault_expansion_left = None;
                return Err(exhausted(Budget::InjectedFault, 0));
            }
        }
        s.deadline_stride = s.deadline_stride.saturating_sub(1);
        if s.deadline_stride == 0 {
            s.deadline_stride = DEADLINE_STRIDE;
            check_deadline_inner(&s)?;
        }
        Ok(())
    })
}

// --- host-stack recursion accounting -------------------------------------
//
// The expander and the tree-walking interpreter both recurse on the host
// (Rust) stack, and they nest within each other: phase-1 transformer
// bodies run mid-expansion. One shared counter bounds their *combined*
// depth, so the structured stack-depth diagnostic fires before the host
// stack does. The caps are calibrated empirically against an 8 MiB
// stack — a main thread's default, and what `.cargo/config.toml` grants
// test threads via RUST_MIN_STACK: measured worst case is ~6.5 KiB of
// host stack per level in debug builds and ~1 KiB in release builds.
// Embedders running Lagoon on smaller threads should set
// `Limits::max_stack_depth` proportionally lower.

/// Largest combined expander + interpreter host recursion depth.
#[cfg(debug_assertions)]
pub const HOST_RECURSION_CAP: u64 = 700;
/// Largest combined expander + interpreter host recursion depth.
#[cfg(not(debug_assertions))]
pub const HOST_RECURSION_CAP: u64 = 3_000;

thread_local! {
    static HOST_DEPTH: Cell<u64> = const { Cell::new(0) };
}

fn host_enter(cap: u64) -> Result<(), Exhausted> {
    let depth = HOST_DEPTH.with(|d| {
        let depth = d.get() + 1;
        d.set(depth);
        depth
    });
    if depth > cap {
        HOST_DEPTH.with(|d| d.set(d.get() - 1));
        return Err(exhausted(Budget::StackDepth, cap));
    }
    Ok(())
}

fn host_leave() {
    HOST_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

/// RAII guard for one level of host-stack recursion in the interpreter.
#[derive(Debug)]
pub struct HostDepth(());

impl Drop for HostDepth {
    fn drop(&mut self) {
        host_leave();
    }
}

/// Charges one level of non-tail interpreter recursion against both the
/// configured stack-depth budget and the host-stack cap; the level is
/// released when the guard drops.
pub fn enter_interp() -> Result<HostDepth, Exhausted> {
    let cap = max_stack_depth().min(HOST_RECURSION_CAP);
    host_enter(cap)?;
    Ok(HostDepth(()))
}

/// RAII guard for one level of macro-expansion nesting.
#[derive(Debug)]
pub struct DepthGuard(());

impl Drop for DepthGuard {
    fn drop(&mut self) {
        host_leave();
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.expansion_depth = s.expansion_depth.saturating_sub(1);
        });
    }
}

/// Enters one level of macro-expansion nesting; the depth is released
/// when the guard drops. Counts against the expansion-depth budget and
/// the shared host-stack cap.
pub fn enter_expansion() -> Result<DepthGuard, Exhausted> {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.expansion_depth >= s.limits.max_expansion_depth {
            return Err(exhausted(
                Budget::ExpansionDepth,
                s.limits.max_expansion_depth,
            ));
        }
        s.expansion_depth += 1;
        Ok(())
    })?;
    if let Err(e) = host_enter(HOST_RECURSION_CAP) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.expansion_depth = s.expansion_depth.saturating_sub(1);
        });
        return Err(e);
    }
    Ok(DepthGuard(()))
}

/// RAII scope marking phase-1 (compile-time) evaluation, so interpreter
/// steps inside transformer bodies charge the phase-1 pool.
pub struct Phase1Scope(());

impl Drop for Phase1Scope {
    fn drop(&mut self) {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.phase1_nesting = s.phase1_nesting.saturating_sub(1);
        });
    }
}

/// Enters phase-1 evaluation (transformer bodies, `begin-for-syntax`).
pub fn phase1_scope() -> Phase1Scope {
    STATE.with(|s| s.borrow_mut().phase1_nesting += 1);
    Phase1Scope(())
}

/// Charges one tree-walking-interpreter step against the phase-1 pool
/// when inside a [`phase1_scope`], the run-time pool otherwise.
pub fn interp_step() -> Result<(), Exhausted> {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.phase1_nesting > 0 {
            if s.phase1_steps_left == 0 {
                return Err(exhausted(Budget::Phase1Steps, s.limits.max_phase1_steps));
            }
            s.phase1_steps_left -= 1;
        } else {
            if s.vm_steps_left == 0 {
                return Err(exhausted(Budget::VmSteps, s.limits.max_vm_steps));
            }
            s.vm_steps_left -= 1;
        }
        if let Some(n) = s.fault_vm_left.as_mut() {
            *n = n.saturating_sub(1);
            if *n == 0 {
                s.fault_vm_left = None;
                return Err(exhausted(Budget::InjectedFault, 0));
            }
        }
        s.deadline_stride = s.deadline_stride.saturating_sub(1);
        if s.deadline_stride == 0 {
            s.deadline_stride = DEADLINE_STRIDE;
            check_deadline_inner(&s)?;
        }
        Ok(())
    })
}

/// Grants the VM a chunk of fuel (1..=[`VM_CHUNK`] steps) to count down
/// locally. Fails when the step pool is dry, the deadline has passed, or
/// an armed VM-step fault's trigger falls inside a previous grant.
/// Charges the whole chunk up front; call [`vm_return_fuel`] with the
/// unused remainder when leaving the dispatch loop.
pub fn vm_take_fuel() -> Result<u64, Exhausted> {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        check_deadline_inner(&s)?;
        if s.vm_steps_left == 0 {
            return Err(exhausted(Budget::VmSteps, s.limits.max_vm_steps));
        }
        let mut grant = VM_CHUNK.min(s.vm_steps_left);
        if let Some(n) = s.fault_vm_left {
            if n == 0 {
                s.fault_vm_left = None;
                return Err(exhausted(Budget::InjectedFault, 0));
            }
            // stop the grant exactly at the trigger so the fault fires
            // on the armed step, not at chunk granularity
            grant = grant.min(n);
        }
        s.vm_steps_left -= grant;
        if let Some(n) = s.fault_vm_left.as_mut() {
            *n -= grant;
        }
        Ok(grant)
    })
}

/// Returns unused fuel from a [`vm_take_fuel`] grant.
pub fn vm_return_fuel(unused: u64) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.vm_steps_left = s.vm_steps_left.saturating_add(unused);
        if let Some(n) = s.fault_vm_left.as_mut() {
            *n += unused;
        }
    });
}

/// The configured stack-depth limit (the VM checks its frame vector
/// against this; the interpreter its host recursion depth).
pub fn max_stack_depth() -> u64 {
    STATE.with(|s| s.borrow().limits.max_stack_depth)
}

/// A [`Budget::StackDepth`] exhaustion at the configured limit, for
/// engines that track depth themselves.
pub fn stack_overflow() -> Exhausted {
    exhausted(Budget::StackDepth, max_stack_depth())
}

/// Fires an armed primitive-call fault; near-free when no plan is armed.
#[inline]
pub fn prim_call() -> Result<(), Exhausted> {
    if !FAULTS_ACTIVE.with(Cell::get) {
        return Ok(());
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if let Some(n) = s.fault_prim_left.as_mut() {
            *n = n.saturating_sub(1);
            if *n == 0 {
                s.fault_prim_left = None;
                return Err(exhausted(Budget::InjectedFault, 0));
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_budget_exhausts() {
        install(Limits {
            max_expansion_steps: 3,
            ..Limits::unlimited()
        });
        assert!(expansion_step().is_ok());
        assert!(expansion_step().is_ok());
        assert!(expansion_step().is_ok());
        let err = expansion_step().unwrap_err();
        assert_eq!(err.budget, Budget::ExpansionSteps);
        assert_eq!(err.limit, 3);
        install(Limits::default());
    }

    #[test]
    fn depth_guard_releases_on_drop() {
        install(Limits {
            max_expansion_depth: 2,
            ..Limits::unlimited()
        });
        let g1 = enter_expansion().unwrap();
        let g2 = enter_expansion().unwrap();
        assert_eq!(
            enter_expansion().unwrap_err().budget,
            Budget::ExpansionDepth
        );
        drop(g2);
        let g2 = enter_expansion().unwrap();
        drop(g1);
        drop(g2);
        install(Limits::default());
    }

    #[test]
    fn interp_steps_split_phase1_and_run_pools() {
        install(Limits {
            max_phase1_steps: 1,
            max_vm_steps: 2,
            ..Limits::unlimited()
        });
        assert!(interp_step().is_ok()); // run pool
        {
            let _p = phase1_scope();
            assert!(interp_step().is_ok());
            assert_eq!(interp_step().unwrap_err().budget, Budget::Phase1Steps);
        }
        assert!(interp_step().is_ok()); // run pool again
        assert_eq!(interp_step().unwrap_err().budget, Budget::VmSteps);
        install(Limits::default());
    }

    #[test]
    fn vm_fuel_is_chunked_and_returnable() {
        install(Limits {
            max_vm_steps: 100_000,
            ..Limits::unlimited()
        });
        let grant = vm_take_fuel().unwrap();
        assert_eq!(grant, VM_CHUNK);
        vm_return_fuel(grant - 10);
        let grant2 = vm_take_fuel().unwrap();
        assert_eq!(grant2, VM_CHUNK.min(100_000 - 10));
        install(Limits::default());
    }

    #[test]
    fn vm_fault_fires_on_exact_step() {
        install(Limits::unlimited());
        install_faults(FaultPlan {
            vm_step: Some(VM_CHUNK + 5),
            ..FaultPlan::default()
        });
        let g1 = vm_take_fuel().unwrap();
        assert_eq!(g1, VM_CHUNK);
        let g2 = vm_take_fuel().unwrap();
        assert_eq!(g2, 5);
        assert_eq!(vm_take_fuel().unwrap_err().budget, Budget::InjectedFault);
        clear_faults();
        install(Limits::default());
    }

    #[test]
    fn prim_fault_fires_on_nth_call() {
        install(Limits::unlimited());
        install_faults(FaultPlan {
            prim_call: Some(2),
            ..FaultPlan::default()
        });
        assert!(prim_call().is_ok());
        assert_eq!(prim_call().unwrap_err().budget, Budget::InjectedFault);
        assert!(prim_call().is_ok()); // disarmed after firing
        clear_faults();
        install(Limits::default());
    }

    #[test]
    fn deadline_fails_from_charge_sites() {
        install(Limits {
            timeout: Some(Duration::ZERO),
            ..Limits::unlimited()
        });
        assert_eq!(check_deadline().unwrap_err().budget, Budget::Deadline);
        assert_eq!(vm_take_fuel().unwrap_err().budget, Budget::Deadline);
        install(Limits::default());
    }

    #[test]
    fn seeded_fault_plans_are_deterministic() {
        let a = FaultPlan::from_seed(42, 1000);
        let b = FaultPlan::from_seed(42, 1000);
        assert_eq!(a, b);
        assert!(a.expansion_step.is_some() || a.vm_step.is_some() || a.prim_call.is_some());
    }
}
