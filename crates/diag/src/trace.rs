//! Thread-local span tracing.
//!
//! A tracer records *spans* — start/end pairs on a monotonic clock with
//! parent nesting, a phase tag, an optional source [`Span`] attachment,
//! and key/value notes — into a bounded ring buffer. Like the event
//! sink in the crate root, it is **off by default**: every entry point
//! guards on [`active`] (one thread-local flag read), so instrumented
//! code costs nothing until a consumer calls [`install`].
//!
//! The pipeline's phase timers ([`crate::time`]) open a trace span
//! whenever a tracer is installed, independently of whether the event
//! sink is on, so `lagoon run --trace out.json` sees the whole
//! read/expand/typecheck/optimize/compile/load/run tree without paying
//! for event collection. The expander adds per-top-level-form child
//! spans carrying each form's source location, and the compiled store
//! annotates the enclosing span with hit/miss/stale outcomes.
//!
//! A finished [`Trace`] renders to Chrome trace-event JSON (the
//! `about:tracing` / Perfetto format): see [`chrome_trace_json`].
//!
//! ```
//! use lagoon_diag::trace;
//! trace::install(trace::DEFAULT_CAPACITY);
//! {
//!     let _outer = trace::start("expand", "main");
//!     let _inner = trace::start("typecheck", "main");
//!     trace::note("checked", "12 forms");
//! }
//! let t = trace::uninstall().expect("tracer was installed");
//! assert_eq!(t.spans.len(), 2);
//! // children complete first; parents carry smaller start times
//! assert_eq!(t.spans[0].phase, "typecheck");
//! assert_eq!(t.spans[1].parent, None);
//! ```

use lagoon_syntax::Span;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

/// Default ring-buffer capacity (completed spans retained per tracer).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Unique id within this tracer (allocation order).
    pub id: u64,
    /// The id of the span this one nested inside, if any.
    pub parent: Option<u64>,
    /// Phase tag (`"read"`, `"expand"`, `"form"`, `"run"`, …).
    pub phase: &'static str,
    /// Human label — usually the module or form being processed.
    pub label: String,
    /// Start time in microseconds since the tracer was installed.
    pub start_us: u64,
    /// Duration in microseconds (end and start are truncated on the
    /// same clock, so a child's interval never escapes its parent's).
    pub dur_us: u64,
    /// Source location attached via [`attach_src`], when any.
    pub src: Option<Span>,
    /// Key/value annotations attached via [`note`], in arrival order.
    pub notes: Vec<(&'static str, String)>,
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    phase: &'static str,
    label: String,
    start_us: u64,
    src: Option<Span>,
    notes: Vec<(&'static str, String)>,
}

struct Tracer {
    epoch: Instant,
    next_id: u64,
    /// The open-span stack; the last entry is the innermost span.
    open: Vec<OpenSpan>,
    /// Completed spans, oldest first, bounded by `cap`.
    done: VecDeque<TraceSpan>,
    cap: usize,
    dropped: u64,
}

impl Tracer {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    fn close_top(&mut self) {
        let Some(open) = self.open.pop() else { return };
        let end_us = self.now_us();
        let span = TraceSpan {
            id: open.id,
            parent: open.parent,
            phase: open.phase,
            label: open.label,
            start_us: open.start_us,
            dur_us: end_us.saturating_sub(open.start_us),
            src: open.src,
            notes: open.notes,
        };
        if self.done.len() >= self.cap {
            self.done.pop_front();
            self.dropped += 1;
        }
        self.done.push_back(span);
    }
}

thread_local! {
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// True when a tracer is installed on this thread. Instrumentation
/// whose span construction is not free should guard on this.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Installs a fresh tracer on this thread (replacing any previous one)
/// with room for `capacity` completed spans; older spans are dropped —
/// and counted — once the ring fills. Zero capacities are bumped to 1.
pub fn install(capacity: usize) {
    TRACER.with(|t| {
        *t.borrow_mut() = Some(Tracer {
            epoch: Instant::now(),
            next_id: 0,
            open: Vec::new(),
            done: VecDeque::new(),
            cap: capacity.max(1),
            dropped: 0,
        });
    });
    ACTIVE.with(|a| a.set(true));
}

/// Removes this thread's tracer and returns the completed trace. Spans
/// still open (an error unwound past their guards without dropping
/// them, which ordinary `let _t = start(…)` usage never does) are
/// force-closed at the current time first.
pub fn uninstall() -> Option<Trace> {
    ACTIVE.with(|a| a.set(false));
    TRACER.with(|t| {
        let mut tracer = t.borrow_mut().take()?;
        while !tracer.open.is_empty() {
            tracer.close_top();
        }
        Some(Trace {
            spans: tracer.done.into_iter().collect(),
            dropped: tracer.dropped,
        })
    })
}

/// Opens a span nested under the innermost open span; the returned
/// guard closes it on drop. Inert (and free) when no tracer is
/// installed.
pub fn start(phase: &'static str, label: &str) -> SpanGuard {
    if !active() {
        return SpanGuard(None);
    }
    TRACER.with(|t| {
        let mut borrow = t.borrow_mut();
        let Some(tracer) = borrow.as_mut() else {
            return SpanGuard(None);
        };
        let id = tracer.next_id;
        tracer.next_id += 1;
        let parent = tracer.open.last().map(|o| o.id);
        let start_us = tracer.now_us();
        tracer.open.push(OpenSpan {
            id,
            parent,
            phase,
            label: label.to_string(),
            start_us,
            src: None,
            notes: Vec::new(),
        });
        SpanGuard(Some(id))
    })
}

/// Like [`start`], attaching `src` up front (synthetic spans — line 0 —
/// are treated as "no location" and skipped).
pub fn start_at(phase: &'static str, label: &str, src: Span) -> SpanGuard {
    let guard = start(phase, label);
    if guard.0.is_some() {
        attach_src(src);
    }
    guard
}

/// Attaches a source location to the innermost open span (no-op when
/// nothing is open, or for synthetic spans).
pub fn attach_src(src: Span) {
    if !active() || src.is_synthetic() {
        return;
    }
    TRACER.with(|t| {
        if let Some(tracer) = t.borrow_mut().as_mut() {
            if let Some(open) = tracer.open.last_mut() {
                open.src = Some(src);
            }
        }
    });
}

/// Attaches a `key: value` note to the innermost open span (no-op when
/// nothing is open).
pub fn note(key: &'static str, value: impl Into<String>) {
    if !active() {
        return;
    }
    TRACER.with(|t| {
        if let Some(tracer) = t.borrow_mut().as_mut() {
            if let Some(open) = tracer.open.last_mut() {
                open.notes.push((key, value.into()));
            }
        }
    });
}

/// Like [`note`], but never lost: when no span is open the annotation
/// is recorded as a standalone zero-duration span with phase `key` and
/// label `value` instead (the store emits miss events after the phase
/// timers have closed, for example).
pub fn note_or_event(key: &'static str, value: impl Into<String>) {
    if !active() {
        return;
    }
    TRACER.with(|t| {
        if let Some(tracer) = t.borrow_mut().as_mut() {
            let value = value.into();
            if let Some(open) = tracer.open.last_mut() {
                open.notes.push((key, value));
            } else {
                let id = tracer.next_id;
                tracer.next_id += 1;
                let start_us = tracer.now_us();
                tracer.open.push(OpenSpan {
                    id,
                    parent: None,
                    phase: key,
                    label: value,
                    start_us,
                    src: None,
                    notes: Vec::new(),
                });
                tracer.close_top();
            }
        }
    });
}

/// Drop guard returned by [`start`]; closes its span (and any spans
/// erroneously left open inside it) when dropped.
pub struct SpanGuard(Option<u64>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.0.take() else { return };
        TRACER.with(|t| {
            let mut borrow = t.borrow_mut();
            let Some(tracer) = borrow.as_mut() else {
                return;
            };
            // Close down to and including our own span. Guards drop in
            // LIFO order, so normally our span *is* the top; anything
            // above it leaked its guard and gets closed here too.
            if tracer.open.iter().any(|o| o.id == id) {
                while tracer.open.last().is_some_and(|o| o.id != id) {
                    tracer.close_top();
                }
                tracer.close_top();
            }
        });
    }
}

/// A finished trace: completed spans in completion order (children
/// before their parents), plus how many were dropped to the ring bound.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Completed spans, oldest completion first.
    pub spans: Vec<TraceSpan>,
    /// Spans evicted from the ring buffer (0 unless the trace overflowed).
    pub dropped: u64,
}

impl Trace {
    /// Appends this trace's spans as Chrome trace-event objects
    /// (`"ph":"X"` complete events, comma-separated, no surrounding
    /// brackets) for process `pid`, track `tid`.
    pub fn write_chrome_events(&self, pid: u32, tid: u32, out: &mut String) {
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"id\":{}",
                crate::json_string(&s.label),
                crate::json_string(s.phase),
                s.start_us,
                s.dur_us,
                s.id
            );
            if let Some(parent) = s.parent {
                let _ = write!(out, ",\"parent\":{parent}");
            }
            if let Some(src) = &s.src {
                let _ = write!(out, ",\"src\":{}", crate::json_string(&src.to_string()));
            }
            for (key, value) in &s.notes {
                let _ = write!(
                    out,
                    ",{}:{}",
                    crate::json_string(key),
                    crate::json_string(value)
                );
            }
            out.push_str("}}");
        }
    }
}

/// Renders one or more traces as a complete Chrome trace-event JSON
/// document (loadable in `about:tracing` or Perfetto). Each `(name,
/// trace)` pair becomes its own track (`tid`), labeled via a
/// `thread_name` metadata event; parallel build workers each get one.
/// `extra` key/value pairs (the value must already be valid JSON) are
/// embedded as additional top-level fields — trace viewers ignore
/// fields they do not know, so this is where profiles and A/B metadata
/// ride along.
pub fn chrome_trace_json(tracks: &[(String, Trace)], extra: &[(&str, String)]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (tid, (name, _)) in tracks.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
            crate::json_string(name)
        );
    }
    for (tid, (_, trace)) in tracks.iter().enumerate() {
        if !trace.spans.is_empty() {
            if !first {
                out.push(',');
            }
            first = false;
            trace.write_chrome_events(1, tid as u32, &mut out);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"");
    let dropped: u64 = tracks.iter().map(|(_, t)| t.dropped).sum();
    let _ = write!(out, ",\"droppedSpans\":{dropped}");
    for (key, value) in extra {
        let _ = write!(out, ",{}:{value}", crate::json_string(key));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_when_not_installed() {
        assert!(!active());
        let guard = start("read", "main");
        note("k", "v");
        attach_src(Span::synthetic());
        drop(guard);
        assert!(uninstall().is_none());
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        install(16);
        {
            let _a = start("expand", "main");
            {
                let _b = start("typecheck", "main");
                note("forms", "3");
            }
            let _c = start("optimize", "main");
        }
        let t = uninstall().expect("installed");
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.dropped, 0);
        let expand = t
            .spans
            .iter()
            .find(|s| s.phase == "expand")
            .expect("expand");
        let check = t
            .spans
            .iter()
            .find(|s| s.phase == "typecheck")
            .expect("typecheck");
        let opt = t
            .spans
            .iter()
            .find(|s| s.phase == "optimize")
            .expect("optimize");
        assert_eq!(check.parent, Some(expand.id));
        assert_eq!(opt.parent, Some(expand.id));
        assert_eq!(expand.parent, None);
        assert_eq!(check.notes, vec![("forms", "3".to_string())]);
        // interval containment: children stay inside the parent
        for child in [check, opt] {
            assert!(child.start_us >= expand.start_us);
            assert!(child.start_us + child.dur_us <= expand.start_us + expand.dur_us);
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        install(2);
        for i in 0..5 {
            let _s = start("form", &format!("f{i}"));
        }
        let t = uninstall().expect("installed");
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.spans[0].label, "f3");
        assert_eq!(t.spans[1].label, "f4");
    }

    #[test]
    fn uninstall_force_closes_open_spans() {
        install(16);
        let guard = start("run", "main");
        std::mem::forget(guard);
        let t = uninstall().expect("installed");
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].phase, "run");
    }

    #[test]
    fn chrome_json_shape() {
        install(16);
        {
            let _a = start_at(
                "read",
                "mod \"x\"",
                Span {
                    source: lagoon_syntax::Symbol::intern("x.lag"),
                    start: 0,
                    end: 1,
                    line: 3,
                    col: 1,
                },
            );
        }
        let t = uninstall().expect("installed");
        let json = chrome_trace_json(&[("main".to_string(), t)], &[("profile", "[]".to_string())]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("x.lag:3:1"));
        assert!(json.contains("\"mod \\\"x\\\"\""));
        assert!(json.contains("\"profile\":[]"));
        assert!(json.ends_with('}'));
    }
}
