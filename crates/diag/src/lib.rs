//! # lagoon-diag
//!
//! A zero-dependency diagnostics subsystem threaded through every layer of
//! the Lagoon pipeline: the reader/expander, the typechecker, the
//! type-driven optimizer, the bytecode VM, and the contract system all
//! emit structured [`Event`]s into a thread-local [`DiagSink`].
//!
//! The sink is **off by default** and the emission sites guard on
//! [`enabled`] (a single thread-local flag read), so instrumented code
//! costs nothing when diagnostics are disabled. Consumers install a sink
//! (usually a [`Collector`]) around the work they want to observe:
//!
//! ```
//! use lagoon_diag::{Collector, Event, Phase};
//! use lagoon_syntax::Symbol;
//!
//! let collector = Collector::install();
//! {
//!     let _timer = lagoon_diag::time(Phase::Expand, Symbol::intern("main"));
//!     lagoon_diag::count("macro-steps", Symbol::intern("main"), 1);
//! }
//! lagoon_diag::uninstall();
//! let report = collector.report();
//! assert_eq!(report.phases.len(), 1);
//! ```
//!
//! [`Report`] aggregates the raw event stream into the tables the CLI
//! (`lagoon run --stats`) and the bench harness print, and renders them
//! either as text or as machine-readable JSON (hand-rolled — this crate
//! deliberately depends on nothing but `lagoon-syntax`, for [`Span`]s).

#![warn(missing_docs)]

pub mod gen;
pub mod limits;
pub mod trace;

pub use limits::{Budget, Exhausted, FaultPlan, Limits};

use lagoon_syntax::{Span, Symbol};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

// ---------------------------------------------------------------------
// the event model
// ---------------------------------------------------------------------

/// A pipeline phase, for enter/exit timing events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Reading source text into syntax objects.
    Read,
    /// Macro expansion down to core forms (for typed modules this phase
    /// *contains* typechecking and optimization, which also report their
    /// own nested phases).
    Expand,
    /// Typechecking a typed module (nested inside [`Phase::Expand`]).
    Typecheck,
    /// The type-driven optimizer pass (nested inside [`Phase::Expand`]).
    Optimize,
    /// Parsing core forms and compiling them to bytecode.
    Compile,
    /// Loading a compiled artifact from the on-disk store (replaces
    /// read/expand/check/compile on a warm cache hit).
    Load,
    /// Instantiating and running module bodies.
    Run,
}

impl Phase {
    /// The lower-case display name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::Expand => "expand",
            Phase::Typecheck => "typecheck",
            Phase::Optimize => "optimize",
            Phase::Compile => "compile",
            Phase::Load => "load",
            Phase::Run => "run",
        }
    }
}

/// What happened when the compiled-module store was consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// A fresh artifact was loaded; compilation was skipped.
    Hit,
    /// No artifact existed (or the module is uncacheable); compiled
    /// from source.
    Miss,
    /// An artifact existed but was out of date (source, dependency, or
    /// environment changed); recompiled.
    Stale,
    /// An artifact existed but failed to decode; recompiled.
    Corrupt,
}

impl CacheStatus {
    /// The lower-case display name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Stale => "stale",
            CacheStatus::Corrupt => "corrupt",
        }
    }
}

/// One structured diagnostic event.
#[derive(Clone, Debug)]
pub enum Event {
    /// A phase began for `module`.
    PhaseStart {
        /// Which phase began.
        phase: Phase,
        /// The module being processed.
        module: Symbol,
    },
    /// A phase finished for `module`, `nanos` of wall-clock time after it
    /// began.
    PhaseEnd {
        /// Which phase ended.
        phase: Phase,
        /// The module being processed.
        module: Symbol,
        /// Wall-clock duration in nanoseconds.
        nanos: u128,
    },
    /// A named counter increment (macro-expansion steps, `local-expand`
    /// invocations, annotations consulted, flat contract checks, …).
    Counter {
        /// Counter name.
        name: &'static str,
        /// The module the count is attributed to.
        module: Symbol,
        /// Amount to add.
        delta: u64,
    },
    /// The optimizer applied a specializing rewrite.
    Rewrite {
        /// Rewrite family (`"float"`, `"float-complex"`, `"fixnum"`,
        /// `"pairs"` — the paper §7.2 catalogue).
        family: &'static str,
        /// The generic operation that was rewritten (e.g. `"+"`).
        op: String,
        /// The `unsafe-*` primitive it became (e.g. `"unsafe-fl+"`).
        rule: &'static str,
        /// The module being optimized.
        module: Symbol,
        /// Source location of the application site.
        span: Span,
    },
    /// The optimizer matched a rewrite's shape but was blocked — a site
    /// worth knowing about when tuning type annotations.
    NearMiss {
        /// Rewrite family that almost fired.
        family: &'static str,
        /// The generic operation at the site.
        op: String,
        /// The module being optimized.
        module: Symbol,
        /// Source location of the application site.
        span: Span,
        /// Why the rewrite was blocked.
        reason: String,
    },
    /// A call crossed a contracted typed/untyped boundary (paper §6).
    ContractCrossing {
        /// The wrapped procedure's name, when known.
        export: Option<Symbol>,
        /// The positive blame party (the implementation side).
        positive: Symbol,
        /// The negative blame party (the client side).
        negative: Symbol,
    },
    /// The compiled-module store was consulted for `module`.
    Cache {
        /// The module looked up.
        module: Symbol,
        /// What the store found.
        status: CacheStatus,
        /// Human-readable detail (why stale/corrupt; empty otherwise).
        detail: String,
    },
    /// A resource budget was exhausted (or an injected fault fired) and
    /// the pipeline unwound with a structured diagnostic.
    Limit {
        /// Which budget ran out (see [`limits::Budget::name`]).
        budget: &'static str,
        /// The module being processed when the budget ran out.
        module: Symbol,
        /// Source location of the charge site, when known.
        span: Option<Span>,
    },
}

/// Emits a compiled-module-store lookup event; a no-op when disabled.
/// When a [`trace`] tracer is installed the outcome is also attached as
/// a `store` annotation on the innermost open span (the load or compile
/// phase consulting the store).
pub fn cache_event(module: Symbol, status: CacheStatus, detail: impl Into<String>) {
    if !enabled() && !trace::active() {
        return;
    }
    let detail = detail.into();
    if trace::active() {
        let summary = if detail.is_empty() {
            status.name().to_string()
        } else {
            format!("{} ({detail})", status.name())
        };
        trace::note_or_event("store", summary);
    }
    if enabled() {
        emit(Event::Cache {
            module,
            status,
            detail,
        });
    }
}

/// Emits a budget-exhaustion event; a no-op when disabled.
pub fn limit_event(exhausted: &Exhausted, module: Symbol, span: Option<Span>) {
    limit_event_named(exhausted.budget.name(), module, span);
}

/// Like [`limit_event`] for callers that only have the budget's name
/// (e.g. recovered from an error kind rather than a live [`Exhausted`]).
pub fn limit_event_named(budget: &'static str, module: Symbol, span: Option<Span>) {
    if enabled() {
        emit(Event::Limit {
            budget,
            module,
            span,
        });
    }
}

/// A consumer of diagnostic events.
pub trait DiagSink {
    /// Receives one event. Called only while the sink is installed and on
    /// the installing thread.
    fn event(&self, event: &Event);
}

// ---------------------------------------------------------------------
// the thread-local sink
// ---------------------------------------------------------------------

thread_local! {
    static SINK: RefCell<Option<Rc<dyn DiagSink>>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// True when a sink is installed on this thread. Instrumentation sites
/// whose event construction is not free should guard on this; it is a
/// single thread-local flag read.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Installs `sink` as this thread's diagnostic sink, replacing any
/// previous one, and enables emission.
pub fn install(sink: Rc<dyn DiagSink>) {
    SINK.with(|s| *s.borrow_mut() = Some(sink));
    ENABLED.with(|e| e.set(true));
}

/// Removes and returns this thread's sink, disabling emission.
pub fn uninstall() -> Option<Rc<dyn DiagSink>> {
    ENABLED.with(|e| e.set(false));
    SINK.with(|s| s.borrow_mut().take())
}

/// Sends `event` to the installed sink; a no-op when disabled.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let sink = SINK.with(|s| s.borrow().clone());
    if let Some(sink) = sink {
        sink.event(&event);
    }
}

/// Emits a counter increment; a no-op when disabled.
pub fn count(name: &'static str, module: Symbol, delta: u64) {
    if enabled() {
        emit(Event::Counter {
            name,
            module,
            delta,
        });
    }
}

/// Starts timing a phase: emits [`Event::PhaseStart`] now and
/// [`Event::PhaseEnd`] when the returned guard drops. When a [`trace`]
/// tracer is installed the guard additionally holds a trace span open
/// for the phase — independently of the event sink, so `--trace` runs
/// see the phase tree without paying for event collection. When both
/// are disabled the guard is inert and no clock is read.
pub fn time(phase: Phase, module: Symbol) -> PhaseTimer {
    let span = if trace::active() {
        Some(module.with_str(|m| trace::start(phase.name(), m)))
    } else {
        None
    };
    if !enabled() {
        return PhaseTimer(None, span);
    }
    emit(Event::PhaseStart { phase, module });
    PhaseTimer(Some((phase, module, Instant::now())), span)
}

/// Drop guard created by [`time`]; emits the matching
/// [`Event::PhaseEnd`] (and closes the phase's trace span) when
/// dropped.
pub struct PhaseTimer(Option<(Phase, Symbol, Instant)>, Option<trace::SpanGuard>);

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((phase, module, start)) = self.0.take() {
            emit(Event::PhaseEnd {
                phase,
                module,
                nanos: start.elapsed().as_nanos(),
            });
        }
        // close the phase's trace span after the end event timestamp
        drop(self.1.take());
    }
}

// ---------------------------------------------------------------------
// the collecting sink
// ---------------------------------------------------------------------

/// A sink that records every event, for building a [`Report`] afterwards.
#[derive(Default)]
pub struct Collector {
    events: RefCell<Vec<Event>>,
}

impl Collector {
    /// Creates a collector and installs it as this thread's sink.
    pub fn install() -> Rc<Collector> {
        let c = Rc::new(Collector::default());
        install(c.clone());
        c
    }

    /// A copy of every event recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Aggregates the recorded events into a [`Report`].
    pub fn report(&self) -> Report {
        Report::from_events(&self.events.borrow())
    }
}

impl DiagSink for Collector {
    fn event(&self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

// ---------------------------------------------------------------------
// the aggregated report
// ---------------------------------------------------------------------

/// One phase-timing row.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Module the phase processed.
    pub module: String,
    /// Phase display name.
    pub phase: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u128,
}

/// One aggregated counter row.
#[derive(Clone, Debug)]
pub struct CounterRow {
    /// Module the counts are attributed to.
    pub module: String,
    /// Counter name.
    pub name: String,
    /// Total of all increments.
    pub value: u64,
}

/// One applied optimizer rewrite.
#[derive(Clone, Debug)]
pub struct RewriteRow {
    /// Rewrite family.
    pub family: &'static str,
    /// The generic operation that was rewritten.
    pub op: String,
    /// The `unsafe-*` primitive it became.
    pub rule: String,
    /// Module being optimized.
    pub module: String,
    /// Rendered source location (`source:line:col`).
    pub span: String,
    /// 1-based source line (0 for synthesized syntax).
    pub line: u32,
}

/// One blocked optimizer rewrite.
#[derive(Clone, Debug)]
pub struct NearMissRow {
    /// Rewrite family that almost fired.
    pub family: &'static str,
    /// The generic operation at the site.
    pub op: String,
    /// Module being optimized.
    pub module: String,
    /// Rendered source location.
    pub span: String,
    /// 1-based source line (0 for synthesized syntax).
    pub line: u32,
    /// Why the rewrite was blocked.
    pub reason: String,
}

/// One contracted boundary, with its crossing count.
#[derive(Clone, Debug)]
pub struct ContractRow {
    /// The wrapped procedure's name (`"<anonymous>"` when unknown).
    pub export: String,
    /// Positive blame party.
    pub positive: String,
    /// Negative blame party.
    pub negative: String,
    /// Number of calls through the boundary.
    pub count: u64,
}

/// One budget-exhaustion row.
#[derive(Clone, Debug)]
pub struct LimitRow {
    /// Which budget ran out.
    pub budget: String,
    /// Module being processed.
    pub module: String,
    /// Rendered source location (empty when unknown).
    pub span: String,
}

/// One compiled-module-store lookup row.
#[derive(Clone, Debug)]
pub struct CacheRow {
    /// The module looked up.
    pub module: String,
    /// Lookup outcome (`"hit"`, `"miss"`, `"stale"`, `"corrupt"`).
    pub status: &'static str,
    /// Why the lookup went the way it did (empty for plain hits/misses).
    pub detail: String,
}

/// One opcode-execution row (supplied by the VM's `vm-counters` feature).
#[derive(Clone, Debug)]
pub struct OpcodeRow {
    /// Instruction mnemonic.
    pub op: String,
    /// Instruction class: `"control"`, `"generic"`, or `"specialized"`.
    pub class: String,
    /// Whether this is a peephole superinstruction (fused opcode).
    pub fused: bool,
    /// Times executed.
    pub count: u64,
}

/// An aggregated diagnostics report, renderable as text or JSON.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Completed phases, in completion order.
    pub phases: Vec<PhaseRow>,
    /// Aggregated counters, in first-seen order.
    pub counters: Vec<CounterRow>,
    /// Applied optimizer rewrites, in emission order.
    pub rewrites: Vec<RewriteRow>,
    /// Blocked optimizer rewrites, in emission order.
    pub near_misses: Vec<NearMissRow>,
    /// Contract boundary crossings, aggregated per boundary.
    pub contracts: Vec<ContractRow>,
    /// Budget exhaustions, in emission order.
    pub limits: Vec<LimitRow>,
    /// Compiled-module-store lookups, in emission order.
    pub caches: Vec<CacheRow>,
    /// Opcode execution counts (empty unless the VM ran with counters).
    pub opcodes: Vec<OpcodeRow>,
}

impl Report {
    /// Aggregates a raw event stream.
    pub fn from_events(events: &[Event]) -> Report {
        let mut report = Report::default();
        for event in events {
            match event {
                Event::PhaseStart { .. } => {}
                Event::PhaseEnd {
                    phase,
                    module,
                    nanos,
                } => report.phases.push(PhaseRow {
                    module: module.as_str(),
                    phase: phase.name(),
                    nanos: *nanos,
                }),
                Event::Counter {
                    name,
                    module,
                    delta,
                } => {
                    let module = module.as_str();
                    match report
                        .counters
                        .iter_mut()
                        .find(|c| c.module == module && c.name == *name)
                    {
                        Some(row) => row.value += delta,
                        None => report.counters.push(CounterRow {
                            module,
                            name: (*name).to_string(),
                            value: *delta,
                        }),
                    }
                }
                Event::Rewrite {
                    family,
                    op,
                    rule,
                    module,
                    span,
                } => report.rewrites.push(RewriteRow {
                    family,
                    op: op.clone(),
                    rule: (*rule).to_string(),
                    module: module.as_str(),
                    span: span.to_string(),
                    line: span.line,
                }),
                Event::NearMiss {
                    family,
                    op,
                    module,
                    span,
                    reason,
                } => report.near_misses.push(NearMissRow {
                    family,
                    op: op.clone(),
                    module: module.as_str(),
                    span: span.to_string(),
                    line: span.line,
                    reason: reason.clone(),
                }),
                Event::ContractCrossing {
                    export,
                    positive,
                    negative,
                } => {
                    let export = export
                        .map(|s| s.with_str(|n| strip_gensym(n).to_string()))
                        .unwrap_or_else(|| "<anonymous>".to_string());
                    let positive = positive.as_str();
                    let negative = negative.as_str();
                    match report.contracts.iter_mut().find(|c| {
                        c.export == export && c.positive == positive && c.negative == negative
                    }) {
                        Some(row) => row.count += 1,
                        None => report.contracts.push(ContractRow {
                            export,
                            positive,
                            negative,
                            count: 1,
                        }),
                    }
                }
                Event::Cache {
                    module,
                    status,
                    detail,
                } => report.caches.push(CacheRow {
                    module: module.as_str(),
                    status: status.name(),
                    detail: detail.clone(),
                }),
                Event::Limit {
                    budget,
                    module,
                    span,
                } => report.limits.push(LimitRow {
                    budget: (*budget).to_string(),
                    module: module.as_str(),
                    span: span.map(|s| s.to_string()).unwrap_or_default(),
                }),
            }
        }
        report
    }

    /// Installs opcode-execution counts (from the VM's `vm-counters`
    /// snapshot; this crate cannot depend on the VM).
    pub fn set_opcodes(&mut self, opcodes: Vec<OpcodeRow>) {
        self.opcodes = opcodes;
    }

    /// Folds another report into this one: rows append (in `other`'s
    /// order after this report's), and counter/contract rows for the
    /// same key merge by summing. The parallel build scheduler uses
    /// this to combine per-worker collectors into one build report.
    pub fn merge(&mut self, other: Report) {
        self.phases.extend(other.phases);
        for c in other.counters {
            match self
                .counters
                .iter_mut()
                .find(|row| row.module == c.module && row.name == c.name)
            {
                Some(row) => row.value += c.value,
                None => self.counters.push(c),
            }
        }
        self.rewrites.extend(other.rewrites);
        self.near_misses.extend(other.near_misses);
        for c in other.contracts {
            match self.contracts.iter_mut().find(|row| {
                row.export == c.export && row.positive == c.positive && row.negative == c.negative
            }) {
                Some(row) => row.count += c.count,
                None => self.contracts.push(c),
            }
        }
        self.limits.extend(other.limits);
        self.caches.extend(other.caches);
        for o in other.opcodes {
            match self
                .opcodes
                .iter_mut()
                .find(|row| row.op == o.op && row.class == o.class && row.fused == o.fused)
            {
                Some(row) => row.count += o.count,
                None => self.opcodes.push(o),
            }
        }
    }

    /// Total executions of generic (tag-dispatching) instructions.
    pub fn generic_ops(&self) -> u64 {
        self.class_total("generic")
    }

    /// Total executions of specialized (`unsafe-*`-derived) instructions.
    pub fn specialized_ops(&self) -> u64 {
        self.class_total("specialized")
    }

    /// Total executions across all instruction classes.
    pub fn total_ops(&self) -> u64 {
        self.opcodes.iter().map(|o| o.count).sum()
    }

    fn class_total(&self, class: &str) -> u64 {
        self.opcodes
            .iter()
            .filter(|o| o.class == class)
            .map(|o| o.count)
            .sum()
    }

    /// Specialized share of dispatch-bearing executions:
    /// `specialized / (generic + specialized)`; `None` when neither ran.
    pub fn specialized_share(&self) -> Option<f64> {
        let g = self.generic_ops();
        let s = self.specialized_ops();
        if g + s == 0 {
            None
        } else {
            Some(s as f64 / (g + s) as f64)
        }
    }

    /// Total executions of peephole superinstructions (fused opcodes).
    pub fn fused_ops(&self) -> u64 {
        self.opcodes
            .iter()
            .filter(|o| o.fused)
            .map(|o| o.count)
            .sum()
    }

    /// Fused share of all executed instructions: `fused / total`;
    /// `None` when nothing ran.
    pub fn fusion_share(&self) -> Option<f64> {
        let total = self.total_ops();
        if total == 0 {
            None
        } else {
            Some(self.fused_ops() as f64 / total as f64)
        }
    }

    /// Number of store lookups that were warm hits.
    pub fn cache_hits(&self) -> usize {
        self.caches.iter().filter(|c| c.status == "hit").count()
    }

    /// Number of store lookups that ended in compilation (miss, stale,
    /// or corrupt artifact).
    pub fn cache_misses(&self) -> usize {
        self.caches.len() - self.cache_hits()
    }

    /// Phase time aggregated into coarse pipeline buckets, in pipeline
    /// order: `read`, `expand`, `check`, `compile`, `load`, `run`.
    /// Typecheck and optimize phases are nested *inside* expand, so
    /// `expand` here excludes them; the optimizer is billed to
    /// `compile` (both produce the executable artifact) and
    /// typechecking to `check`.
    pub fn timing_buckets(&self) -> [(&'static str, u128); 6] {
        let (mut read, mut expand, mut check, mut optimize, mut compile, mut load, mut run) =
            (0u128, 0u128, 0u128, 0u128, 0u128, 0u128, 0u128);
        for p in &self.phases {
            match p.phase {
                "read" => read += p.nanos,
                "expand" => expand += p.nanos,
                "typecheck" => check += p.nanos,
                "optimize" => optimize += p.nanos,
                "compile" => compile += p.nanos,
                "load" => load += p.nanos,
                "run" => run += p.nanos,
                _ => {}
            }
        }
        let expand = expand.saturating_sub(check + optimize);
        [
            ("read", read),
            ("expand", expand),
            ("check", check),
            ("compile", compile + optimize),
            ("load", load),
            ("run", run),
        ]
    }

    /// The phase-timing table alone (used by `lagoon expand --timings`).
    pub fn render_phases(&self) -> String {
        let mut out = String::new();
        if self.phases.is_empty() {
            return out;
        }
        let _ = writeln!(out, "phase timings");
        let _ = writeln!(out, "  {:<20} {:<10} {:>10}", "module", "phase", "ms");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<20} {:<10} {:>10.3}",
                p.module,
                p.phase,
                p.nanos as f64 / 1e6
            );
        }
        out
    }

    /// The full human-readable report (empty sections are omitted).
    pub fn render_text(&self) -> String {
        let mut out = self.render_phases();
        if !self.phases.is_empty() {
            let rendered: Vec<String> = self
                .timing_buckets()
                .iter()
                .map(|(name, nanos)| format!("{name} {:.3}ms", *nanos as f64 / 1e6))
                .collect();
            let _ = writeln!(out, "pipeline buckets: {}", rendered.join(", "));
        }
        if !self.caches.is_empty() {
            let _ = writeln!(
                out,
                "compiled store: {} hit(s), {} compile(s)",
                self.cache_hits(),
                self.cache_misses()
            );
            for c in &self.caches {
                if c.detail.is_empty() {
                    let _ = writeln!(out, "  {:<20} {}", c.module, c.status);
                } else {
                    let _ = writeln!(out, "  {:<20} {:<8} {}", c.module, c.status, c.detail);
                }
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<20} {:<24} {:>8}", c.module, c.name, c.value);
            }
        }
        let _ = writeln!(
            out,
            "optimizer decisions: {} applied, {} near miss(es)",
            self.rewrites.len(),
            self.near_misses.len()
        );
        for r in &self.rewrites {
            let _ = writeln!(
                out,
                "  {:<24} {} -> {}  [{}]",
                r.span, r.op, r.rule, r.family
            );
        }
        for n in &self.near_misses {
            let _ = writeln!(
                out,
                "  {:<24} {} blocked [{}]: {}",
                n.span, n.op, n.family, n.reason
            );
        }
        if !self.contracts.is_empty() {
            let _ = writeln!(out, "contract boundary crossings");
            for c in &self.contracts {
                let _ = writeln!(
                    out,
                    "  {:<20} ({} <-> {}): {}",
                    c.export, c.positive, c.negative, c.count
                );
            }
        }
        if !self.limits.is_empty() {
            let _ = writeln!(out, "resource limits hit");
            for l in &self.limits {
                let _ = writeln!(out, "  {:<20} {:<18} {}", l.module, l.budget, l.span);
            }
        }
        if !self.opcodes.is_empty() {
            let share = self
                .specialized_share()
                .map(|s| format!("{:.1}%", s * 100.0))
                .unwrap_or_else(|| "n/a".to_string());
            let fusion = self
                .fusion_share()
                .map(|s| format!("{:.1}%", s * 100.0))
                .unwrap_or_else(|| "n/a".to_string());
            let _ = writeln!(
                out,
                "opcode mix: {} executed ({} generic, {} specialized; specialized share {}; {} fused, fusion share {})",
                self.total_ops(),
                self.generic_ops(),
                self.specialized_ops(),
                share,
                self.fused_ops(),
                fusion
            );
            for o in &self.opcodes {
                let mark = if o.fused { " fused" } else { "" };
                let _ = writeln!(out, "  {:<20} {:<12} {:>12}{mark}", o.op, o.class, o.count);
            }
        }
        out
    }

    /// The report as a machine-readable JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"phases\":[");
        push_rows(&mut out, &self.phases, |out, p| {
            let _ = write!(
                out,
                "{{\"module\":{},\"phase\":{},\"ms\":{:.6}}}",
                json_string(&p.module),
                json_string(p.phase),
                p.nanos as f64 / 1e6
            );
        });
        out.push_str("],\"counters\":[");
        push_rows(&mut out, &self.counters, |out, c| {
            let _ = write!(
                out,
                "{{\"module\":{},\"name\":{},\"value\":{}}}",
                json_string(&c.module),
                json_string(&c.name),
                c.value
            );
        });
        out.push_str("],\"rewrites\":[");
        push_rows(&mut out, &self.rewrites, |out, r| {
            let _ = write!(
                out,
                "{{\"module\":{},\"family\":{},\"op\":{},\"rule\":{},\"span\":{},\"line\":{}}}",
                json_string(&r.module),
                json_string(r.family),
                json_string(&r.op),
                json_string(&r.rule),
                json_string(&r.span),
                r.line
            );
        });
        out.push_str("],\"near_misses\":[");
        push_rows(&mut out, &self.near_misses, |out, n| {
            let _ = write!(
                out,
                "{{\"module\":{},\"family\":{},\"op\":{},\"span\":{},\"line\":{},\"reason\":{}}}",
                json_string(&n.module),
                json_string(n.family),
                json_string(&n.op),
                json_string(&n.span),
                n.line,
                json_string(&n.reason)
            );
        });
        out.push_str("],\"contracts\":[");
        push_rows(&mut out, &self.contracts, |out, c| {
            let _ = write!(
                out,
                "{{\"export\":{},\"positive\":{},\"negative\":{},\"count\":{}}}",
                json_string(&c.export),
                json_string(&c.positive),
                json_string(&c.negative),
                c.count
            );
        });
        out.push_str("],\"limits\":[");
        push_rows(&mut out, &self.limits, |out, l| {
            let _ = write!(
                out,
                "{{\"budget\":{},\"module\":{},\"span\":{}}}",
                json_string(&l.budget),
                json_string(&l.module),
                json_string(&l.span)
            );
        });
        out.push_str("],\"cache\":[");
        push_rows(&mut out, &self.caches, |out, c| {
            let _ = write!(
                out,
                "{{\"module\":{},\"status\":{},\"detail\":{}}}",
                json_string(&c.module),
                json_string(c.status),
                json_string(&c.detail)
            );
        });
        out.push_str("],\"buckets\":{");
        for (i, (name, nanos)) in self.timing_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{:.6}", json_string(name), *nanos as f64 / 1e6);
        }
        out.push_str("},\"opcodes\":[");
        push_rows(&mut out, &self.opcodes, |out, o| {
            let _ = write!(
                out,
                "{{\"op\":{},\"class\":{},\"fused\":{},\"count\":{}}}",
                json_string(&o.op),
                json_string(&o.class),
                o.fused,
                o.count
            );
        });
        let _ = write!(
            out,
            "],\"summary\":{{\"rewrites\":{},\"near_misses\":{},\"generic_ops\":{},\"specialized_ops\":{},\"fused_ops\":{},\"total_ops\":{},\"cache_hits\":{},\"cache_misses\":{}}}}}",
            self.rewrites.len(),
            self.near_misses.len(),
            self.generic_ops(),
            self.specialized_ops(),
            self.fused_ops(),
            self.total_ops(),
            self.cache_hits(),
            self.cache_misses()
        );
        out
    }
}

// ---------------------------------------------------------------------
// latency histograms
// ---------------------------------------------------------------------

/// Number of power-of-two latency buckets: `[0,1µs)`, `[1,2µs)`, … up
/// to a final catch-all bucket for everything ≥ 2^30 µs (~18 minutes).
const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-footprint latency histogram with power-of-two microsecond
/// buckets. The evaluation daemon keeps one per request op; `merge`
/// lets per-worker histograms fold into a server-wide view.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_micros: u128,
    max_micros: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_micros: 0,
            max_micros: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, latency: std::time::Duration) {
        let micros64 = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - micros64.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_micros += u128::from(micros64);
        self.max_micros = self.max_micros.max(micros64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }

    /// Largest observed latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// An upper bound (µs) below which at least `q` of observations
    /// fall, read off the bucket boundaries (so it is quantized to the
    /// next power of two). Returns 0 for an empty histogram.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if idx == 0 { 1 } else { 1u64 << idx };
            }
        }
        self.max_micros
    }

    /// A smoothed quantile estimate in microseconds: finds the bucket
    /// holding the `q`-th observation and interpolates linearly inside
    /// it (the catch-all top bucket uses the observed max as its upper
    /// edge), so clients get a usable number instead of the power-of-two
    /// ceiling [`Histogram::quantile_upper_micros`] reports. Clamped to
    /// the observed max; 0 for an empty histogram.
    pub fn quantile_est_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let before = seen as f64;
            seen += n;
            if seen as f64 >= target {
                let (lo, hi) = self.bucket_span(idx);
                let frac = (target - before) / *n as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
                return est.min(self.max_micros as f64);
            }
        }
        self.max_micros as f64
    }

    /// The `[lower, upper]` microsecond range of bucket `idx`. The
    /// catch-all top bucket's upper edge is the observed max (the only
    /// honest bound available).
    fn bucket_span(&self, idx: usize) -> (u64, u64) {
        let lo = if idx == 0 { 0 } else { 1u64 << (idx - 1) };
        let hi = if idx == 0 {
            1
        } else if idx == HISTOGRAM_BUCKETS - 1 {
            self.max_micros.max(lo)
        } else {
            1u64 << idx
        };
        (lo, hi)
    }

    /// Folds `other` into this histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.total_micros = self.total_micros.saturating_add(other.total_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// The non-empty buckets as `(upper_bound_micros, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(idx, n)| (if idx == 0 { 1 } else { 1u64 << idx }, *n))
            .collect()
    }

    /// The non-empty buckets with both bounds:
    /// `(lower_bound_micros, upper_bound_micros, count)` triples, so
    /// clients can reconstruct real quantiles instead of guessing at
    /// the bucket layout.
    pub fn nonzero_bucket_spans(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(idx, n)| {
                let (lo, hi) = self.bucket_span(idx);
                (lo, hi, *n)
            })
            .collect()
    }

    /// The histogram as a JSON object: `count`, `mean_us`, `max_us`,
    /// the bucket-ceiling quantiles `p50_us`/`p99_us`, the interpolated
    /// estimates `p50_est_us`/`p99_est_us`, and the non-empty `buckets`
    /// with both bounds (`ge_us` inclusive lower, `le_us` upper).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"count\":{},\"mean_us\":{:.1},\"max_us\":{},\"p50_us\":{},\"p99_us\":{},\"p50_est_us\":{:.1},\"p99_est_us\":{:.1},\"buckets\":[",
            self.count,
            self.mean_micros(),
            self.max_micros,
            self.quantile_upper_micros(0.5),
            self.quantile_upper_micros(0.99),
            self.quantile_est_micros(0.5),
            self.quantile_est_micros(0.99)
        );
        for (i, (lo, hi, n)) in self.nonzero_bucket_spans().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"ge_us\":{lo},\"le_us\":{hi},\"count\":{n}}}");
        }
        out.push_str("]}");
        out
    }
}

fn push_rows<T>(out: &mut String, rows: &[T], mut f: impl FnMut(&mut String, &T)) {
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        f(out, row);
    }
}

/// Drops a gensym suffix so reports show the name the user wrote:
/// `shout~122` → `shout` (global-counter form) and
/// `shout~1a2b3c4d.7` → `shout` (deterministic scoped form). Names
/// without a recognized suffix pass through untouched.
fn strip_gensym(name: &str) -> String {
    lagoon_syntax::strip_gensym(name).to_string()
}

/// Renders `s` as a JSON string literal (with escaping).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn disabled_by_default_and_emission_is_dropped() {
        assert!(!enabled());
        emit(Event::Counter {
            name: "x",
            module: m("main"),
            delta: 1,
        });
        // nothing to observe: no sink, no panic
        let timer = time(Phase::Read, m("main"));
        drop(timer);
    }

    #[test]
    fn collector_records_and_reports() {
        let c = Collector::install();
        assert!(enabled());
        count("macro-steps", m("main"), 2);
        count("macro-steps", m("main"), 3);
        {
            let _t = time(Phase::Expand, m("main"));
        }
        emit(Event::Rewrite {
            family: "float",
            op: "+".to_string(),
            rule: "unsafe-fl+",
            module: m("main"),
            span: Span::synthetic(),
        });
        emit(Event::ContractCrossing {
            export: Some(m("inc")),
            positive: m("lib"),
            negative: m("untyped-client"),
        });
        emit(Event::ContractCrossing {
            export: Some(m("inc")),
            positive: m("lib"),
            negative: m("untyped-client"),
        });
        uninstall();
        assert!(!enabled());

        let report = c.report();
        assert_eq!(report.counters.len(), 1);
        assert_eq!(report.counters[0].value, 5);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].phase, "expand");
        assert_eq!(report.rewrites.len(), 1);
        assert_eq!(report.contracts.len(), 1);
        assert_eq!(report.contracts[0].count, 2);

        let text = report.render_text();
        assert!(text.contains("phase timings"));
        assert!(text.contains("unsafe-fl+"));
        assert!(text.contains("inc"));
    }

    #[test]
    fn json_is_wellformed_enough() {
        let c = Collector::install();
        count("steps", m("a\"b"), 1);
        uninstall();
        let json = c.report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\\\"b\""));
        assert!(json.contains("\"summary\""));
    }

    #[test]
    fn opcode_summaries() {
        let mut report = Report::default();
        report.set_opcodes(vec![
            OpcodeRow {
                op: "Add2".to_string(),
                class: "generic".to_string(),
                fused: false,
                count: 10,
            },
            OpcodeRow {
                op: "FlAdd".to_string(),
                class: "specialized".to_string(),
                fused: false,
                count: 30,
            },
            OpcodeRow {
                op: "BrLt2".to_string(),
                class: "generic".to_string(),
                fused: true,
                count: 15,
            },
            OpcodeRow {
                op: "Return".to_string(),
                class: "control".to_string(),
                fused: false,
                count: 5,
            },
        ]);
        assert_eq!(report.generic_ops(), 25);
        assert_eq!(report.specialized_ops(), 30);
        assert_eq!(report.total_ops(), 60);
        assert!((report.specialized_share().unwrap() - (30.0 / 55.0)).abs() < 1e-9);
        assert_eq!(report.fused_ops(), 15);
        assert!((report.fusion_share().unwrap() - 0.25).abs() < 1e-9);
        let text = report.render_text();
        assert!(text.contains("fusion share 25.0%"));
        let json = report.to_json();
        assert!(json.contains("\"fused\":true"));
        assert!(json.contains("\"fused_ops\":15"));
    }

    #[test]
    fn strip_gensym_handles_both_forms() {
        assert_eq!(strip_gensym("shout~122"), "shout");
        assert_eq!(strip_gensym("shout~1a2b3c4d.7"), "shout");
        assert_eq!(strip_gensym("shout"), "shout");
        assert_eq!(strip_gensym("a~b"), "a~b");
        assert_eq!(strip_gensym("x~12345678."), "x~12345678.");
        assert_eq!(strip_gensym("x~123.4"), "x~123.4"); // hex part must be 8 chars
    }

    #[test]
    fn reports_merge() {
        let mut a = Report::default();
        a.counters.push(CounterRow {
            module: "m".into(),
            name: "steps".into(),
            value: 2,
        });
        a.caches.push(CacheRow {
            module: "m".into(),
            status: "hit",
            detail: String::new(),
        });
        let mut b = Report::default();
        b.counters.push(CounterRow {
            module: "m".into(),
            name: "steps".into(),
            value: 3,
        });
        b.caches.push(CacheRow {
            module: "n".into(),
            status: "miss",
            detail: String::new(),
        });
        a.merge(b);
        assert_eq!(a.counters.len(), 1);
        assert_eq!(a.counters[0].value, 5);
        assert_eq!(a.caches.len(), 2);
        assert_eq!(a.cache_hits(), 1);
        assert_eq!(a.cache_misses(), 1);
    }

    #[test]
    fn histogram_records_and_merges() {
        use std::time::Duration;
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_micros(0.5), 0);
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(2));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max_micros(), 2000);
        assert!(h.mean_micros() > 0.0);
        assert!(h.quantile_upper_micros(0.5) >= 4);
        assert!(h.quantile_upper_micros(0.99) >= 2000);

        let mut other = Histogram::new();
        other.record(Duration::from_micros(0));
        h.merge(&other);
        assert_eq!(h.count(), 4);
        let json = h.to_json();
        assert!(json.contains("\"count\":4"), "{json}");
        assert!(json.contains("\"le_us\":1"), "{json}");
        assert!(json.contains("\"ge_us\":0"), "{json}");
        assert!(json.contains("\"p50_est_us\""), "{json}");
    }

    #[test]
    fn histogram_zero_duration_samples() {
        use std::time::Duration;
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_micros(), 0);
        // the estimate is clamped to the observed max, not the bucket edge
        assert_eq!(h.quantile_est_micros(0.5), 0.0);
        assert_eq!(h.quantile_est_micros(0.99), 0.0);
        assert_eq!(h.nonzero_bucket_spans(), vec![(0, 1, 2)]);
        // merging an empty histogram is the identity
        h.merge(&Histogram::new());
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_saturating_top_bucket() {
        use std::time::Duration;
        let mut a = Histogram::new();
        a.record(Duration::MAX); // micros saturate into the catch-all bucket
        let mut b = Histogram::new();
        b.record(Duration::MAX);
        b.record(Duration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_micros(), u64::MAX);
        // the catch-all bucket's upper edge is the observed max; the
        // interpolated quantile must stay finite and within it
        let p99 = a.quantile_est_micros(0.99);
        assert!(p99 <= u64::MAX as f64 && p99 > 0.0);
        let spans = a.nonzero_bucket_spans();
        assert_eq!(spans.len(), 2);
        let top = spans.last().expect("top bucket");
        assert_eq!(top.1, u64::MAX);
        assert_eq!(top.2, 2);
    }

    #[test]
    fn histogram_estimates_interpolate_within_buckets() {
        use std::time::Duration;
        let mut h = Histogram::new();
        // 10 samples in the [64,128) bucket
        for _ in 0..10 {
            h.record(Duration::from_micros(100));
        }
        let p50 = h.quantile_est_micros(0.5);
        assert!((64.0..=100.0).contains(&p50), "{p50}");
        // the power-of-two ceiling is coarser than the estimate
        assert_eq!(h.quantile_upper_micros(0.5), 128);
    }

    #[test]
    fn phase_timer_opens_trace_spans_without_a_sink() {
        assert!(!enabled());
        trace::install(16);
        {
            let _t = time(Phase::Expand, m("traced-mod"));
            {
                let _u = time(Phase::Typecheck, m("traced-mod"));
            }
            cache_event(m("traced-mod"), CacheStatus::Hit, "123 bytes");
        }
        let t = trace::uninstall().expect("tracer installed");
        assert_eq!(t.spans.len(), 2);
        let expand = t.spans.iter().find(|s| s.phase == "expand").expect("span");
        let check = t
            .spans
            .iter()
            .find(|s| s.phase == "typecheck")
            .expect("span");
        assert_eq!(check.parent, Some(expand.id));
        assert_eq!(expand.label, "traced-mod");
        // the cache event was attached as a note on the open expand span
        assert!(expand
            .notes
            .iter()
            .any(|(k, v)| *k == "store" && v.contains("hit")));
    }
}
