//! Property tests on the numeric tower, driven by a fixed-seed
//! splitmix64 stream so the workspace stays dependency-free and every
//! failure reproduces exactly.

use lagoon_runtime::{number, Value};

/// Deterministic splitmix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    fn float(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() as f64 / u64::MAX as f64) * (hi - lo)
    }

    fn num(&mut self) -> Value {
        match self.next() % 3 {
            0 => Value::Int(self.int(-1_000_000, 1_000_000)),
            1 => Value::Float(self.float(-1e6, 1e6)),
            _ => Value::Complex(self.float(-1e3, 1e3), self.float(-1e3, 1e3)),
        }
    }
}

fn approx_eq(a: &Value, b: &Value) -> bool {
    fn parts(v: &Value) -> (f64, f64) {
        if let Some(n) = v.as_int() {
            (n as f64, 0.0)
        } else if let Some(x) = v.as_float() {
            (x, 0.0)
        } else if let Some((re, im)) = v.as_complex() {
            (re, im)
        } else {
            (f64::NAN, f64::NAN)
        }
    }
    let (ar, ai) = parts(a);
    let (br, bi) = parts(b);
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()));
    close(ar, br) && close(ai, bi)
}

#[test]
fn addition_commutes() {
    let mut rng = Rng(1);
    for _ in 0..256 {
        let (a, b) = (rng.num(), rng.num());
        match (number::add(&a, &b), number::add(&b, &a)) {
            (Ok(x), Ok(y)) => assert!(approx_eq(&x, &y), "{x} vs {y}"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("asymmetric: {x:?} vs {y:?}"),
        }
    }
}

#[test]
fn multiplication_commutes() {
    let mut rng = Rng(2);
    for _ in 0..256 {
        let (a, b) = (rng.num(), rng.num());
        match (number::mul(&a, &b), number::mul(&b, &a)) {
            (Ok(x), Ok(y)) => assert!(approx_eq(&x, &y), "{x} vs {y}"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("asymmetric: {x:?} vs {y:?}"),
        }
    }
}

#[test]
fn subtraction_inverts_addition() {
    let mut rng = Rng(3);
    for _ in 0..256 {
        let (a, b) = (rng.num(), rng.num());
        if let Ok(sum) = number::add(&a, &b) {
            if let Ok(back) = number::sub(&sum, &b) {
                assert!(approx_eq(&back, &a), "{back} vs {a}");
            }
        }
    }
}

#[test]
fn comparison_is_total_on_reals() {
    let mut rng = Rng(4);
    for _ in 0..256 {
        let ai = Value::Int(rng.int(-1_000_000, 1_000_000));
        let bf = Value::Float(rng.float(-1e6, 1e6));
        let lt = number::compare("<", &ai, &bf).unwrap().is_lt();
        let gt = number::compare(">", &ai, &bf).unwrap().is_gt();
        let eq = number::num_eq(&ai, &bf).unwrap();
        assert_eq!([lt, gt, eq].iter().filter(|x| **x).count(), 1);
    }
}

#[test]
fn quotient_remainder_identity() {
    let mut rng = Rng(5);
    for _ in 0..256 {
        let a = rng.int(-100_000, 100_000);
        let b = rng.int(1, 1000);
        let q = number::quotient(&Value::Int(a), &Value::Int(b)).unwrap();
        let r = number::remainder(&Value::Int(a), &Value::Int(b)).unwrap();
        match (q.as_int(), r.as_int()) {
            (Some(q), Some(r)) => {
                assert_eq!(q * b + r, a);
                assert!(r.abs() < b);
            }
            _ => panic!("non-integer quotient/remainder"),
        }
    }
}

#[test]
fn modulo_sign_follows_divisor() {
    let mut rng = Rng(6);
    for _ in 0..256 {
        let a = rng.int(-100_000, 100_000);
        let b = if rng.next().is_multiple_of(2) {
            rng.int(1, 1000)
        } else {
            rng.int(-1000, -1)
        };
        match number::modulo(&Value::Int(a), &Value::Int(b))
            .unwrap()
            .as_int()
        {
            Some(m) => {
                assert!(m == 0 || (m > 0) == (b > 0), "m={m} b={b}");
                assert!(m.abs() < b.abs());
                // congruence
                assert_eq!((a - m) % b, 0);
            }
            _ => panic!("non-integer modulo"),
        }
    }
}

#[test]
fn sqrt_squares_back() {
    let mut rng = Rng(7);
    for _ in 0..256 {
        let x = rng.float(0.0, 1e12);
        match number::sqrt(&Value::Float(x)).unwrap().as_float() {
            Some(r) => assert!((r * r - x).abs() <= 1e-6 * (1.0 + x)),
            None => panic!("sqrt of a nonnegative float must be a float"),
        }
    }
}

#[test]
fn magnitude_is_nonnegative() {
    let mut rng = Rng(8);
    for _ in 0..256 {
        let v = rng.num();
        if let Ok(m) = number::magnitude(&v) {
            if let Some(n) = m.as_int() {
                assert!(n >= 0);
            } else if let Some(x) = m.as_float() {
                assert!(x >= 0.0);
            } else {
                panic!("non-real magnitude {m}");
            }
        }
    }
}
