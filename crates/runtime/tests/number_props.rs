//! Property tests on the numeric tower.

use lagoon_runtime::{number, Value};
use proptest::prelude::*;

fn num_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1e6..1e6).prop_map(Value::Float),
        ((-1e3..1e3), (-1e3..1e3)).prop_map(|(re, im)| Value::Complex(re, im)),
    ]
}

fn approx_eq(a: &Value, b: &Value) -> bool {
    fn parts(v: &Value) -> (f64, f64) {
        match v {
            Value::Int(n) => (*n as f64, 0.0),
            Value::Float(x) => (*x, 0.0),
            Value::Complex(re, im) => (*re, *im),
            _ => (f64::NAN, f64::NAN),
        }
    }
    let (ar, ai) = parts(a);
    let (br, bi) = parts(b);
    let close = |x: f64, y: f64| {
        (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()))
    };
    close(ar, br) && close(ai, bi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn addition_commutes(a in num_strategy(), b in num_strategy()) {
        let ab = number::add(&a, &b);
        let ba = number::add(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert!(approx_eq(&x, &y), "{x} vs {y}"),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn multiplication_commutes(a in num_strategy(), b in num_strategy()) {
        let ab = number::mul(&a, &b);
        let ba = number::mul(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert!(approx_eq(&x, &y), "{x} vs {y}"),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn subtraction_inverts_addition(a in num_strategy(), b in num_strategy()) {
        if let (Ok(sum), true) = (number::add(&a, &b), true) {
            if let Ok(back) = number::sub(&sum, &b) {
                prop_assert!(approx_eq(&back, &a), "{back} vs {a}");
            }
        }
    }

    #[test]
    fn comparison_is_total_on_reals(
        a in -1_000_000i64..1_000_000,
        b in prop_oneof![(-1e6..1e6)],
    ) {
        let ai = Value::Int(a);
        let bf = Value::Float(b);
        let lt = number::compare("<", &ai, &bf).unwrap().is_lt();
        let gt = number::compare(">", &ai, &bf).unwrap().is_gt();
        let eq = number::num_eq(&ai, &bf).unwrap();
        prop_assert_eq!([lt, gt, eq].iter().filter(|x| **x).count(), 1);
    }

    #[test]
    fn quotient_remainder_identity(a in -100_000i64..100_000, b in 1i64..1000) {
        let q = number::quotient(&Value::Int(a), &Value::Int(b)).unwrap();
        let r = number::remainder(&Value::Int(a), &Value::Int(b)).unwrap();
        match (q, r) {
            (Value::Int(q), Value::Int(r)) => {
                prop_assert_eq!(q * b + r, a);
                prop_assert!(r.abs() < b);
            }
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn modulo_sign_follows_divisor(a in -100_000i64..100_000, b in prop_oneof![1i64..1000, -1000i64..-1]) {
        match number::modulo(&Value::Int(a), &Value::Int(b)).unwrap() {
            Value::Int(m) => {
                prop_assert!(m == 0 || (m > 0) == (b > 0), "m={m} b={b}");
                prop_assert!(m.abs() < b.abs());
                // congruence
                prop_assert_eq!((a - m) % b, 0);
            }
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn sqrt_squares_back(x in 0.0f64..1e12) {
        match number::sqrt(&Value::Float(x)).unwrap() {
            Value::Float(r) => prop_assert!((r * r - x).abs() <= 1e-6 * (1.0 + x)),
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn magnitude_is_nonnegative(v in num_strategy()) {
        match number::magnitude(&v) {
            Ok(Value::Int(n)) => prop_assert!(n >= 0),
            Ok(Value::Float(x)) => prop_assert!(x >= 0.0),
            Ok(_) => prop_assert!(false),
            Err(_) => {}
        }
    }
}
