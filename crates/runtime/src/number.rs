//! The numeric tower: generic arithmetic with tag dispatch.
//!
//! Lagoon's tower has three levels — exact integers (`i64`, overflow
//! checked), inexact reals (`f64`), and inexact complex (`f64`×`f64`, the
//! typed language's `Float-Complex`). Binary operations promote upward:
//! `Int ⊕ Float → Float`, `Float ⊕ Complex → Complex`.
//!
//! Every function here performs *tag dispatch*: it inspects the [`Value`]
//! word tags before operating. That per-operation dispatch is exactly the
//! cost the paper's type-driven optimizer eliminates by rewriting generic
//! operations to the `unsafe-fl*` primitives once the typechecker has
//! proved the operand types. With the NaN-boxed word the common cases —
//! two fixnums, two flonums — are a pair of 16-bit tag compares.

use crate::error::{Kind, RtError};
use crate::value::{Unpacked, Value};

fn not_number(op: &str, v: &Value) -> RtError {
    RtError::type_error(format!("{op}: expected number, got {}", v.write_string()))
}

/// The promoted pair of operands for a binary numeric operation.
enum Promoted {
    Ints(i64, i64),
    Floats(f64, f64),
    Complexes(f64, f64, f64, f64),
}

fn promote(op: &str, a: &Value, b: &Value) -> Result<Promoted, RtError> {
    match (a.unpacked(), b.unpacked()) {
        (Unpacked::Int(x), Unpacked::Int(y)) => Ok(Promoted::Ints(x, y)),
        (Unpacked::Int(x), Unpacked::Float(y)) => Ok(Promoted::Floats(x as f64, y)),
        (Unpacked::Float(x), Unpacked::Int(y)) => Ok(Promoted::Floats(x, y as f64)),
        (Unpacked::Float(x), Unpacked::Float(y)) => Ok(Promoted::Floats(x, y)),
        (Unpacked::Complex(xr, xi), Unpacked::Complex(yr, yi)) => {
            Ok(Promoted::Complexes(xr, xi, yr, yi))
        }
        (Unpacked::Complex(xr, xi), Unpacked::Int(y)) => {
            Ok(Promoted::Complexes(xr, xi, y as f64, 0.0))
        }
        (Unpacked::Complex(xr, xi), Unpacked::Float(y)) => Ok(Promoted::Complexes(xr, xi, y, 0.0)),
        (Unpacked::Int(x), Unpacked::Complex(yr, yi)) => {
            Ok(Promoted::Complexes(x as f64, 0.0, yr, yi))
        }
        (Unpacked::Float(x), Unpacked::Complex(yr, yi)) => Ok(Promoted::Complexes(x, 0.0, yr, yi)),
        (Unpacked::Int(_) | Unpacked::Float(_) | Unpacked::Complex(_, _), _) => {
            Err(not_number(op, b))
        }
        _ => Err(not_number(op, a)),
    }
}

/// Generic `+`.
pub fn add(a: &Value, b: &Value) -> Result<Value, RtError> {
    match promote("+", a, b)? {
        Promoted::Ints(x, y) => x
            .checked_add(y)
            .map(Value::Int)
            .ok_or_else(|| RtError::new(Kind::Overflow, format!("(+ {x} {y})"))),
        Promoted::Floats(x, y) => Ok(Value::Float(x + y)),
        Promoted::Complexes(xr, xi, yr, yi) => Ok(Value::Complex(xr + yr, xi + yi)),
    }
}

/// Generic `-`.
pub fn sub(a: &Value, b: &Value) -> Result<Value, RtError> {
    match promote("-", a, b)? {
        Promoted::Ints(x, y) => x
            .checked_sub(y)
            .map(Value::Int)
            .ok_or_else(|| RtError::new(Kind::Overflow, format!("(- {x} {y})"))),
        Promoted::Floats(x, y) => Ok(Value::Float(x - y)),
        Promoted::Complexes(xr, xi, yr, yi) => Ok(Value::Complex(xr - yr, xi - yi)),
    }
}

/// Generic `*`.
pub fn mul(a: &Value, b: &Value) -> Result<Value, RtError> {
    match promote("*", a, b)? {
        Promoted::Ints(x, y) => x
            .checked_mul(y)
            .map(Value::Int)
            .ok_or_else(|| RtError::new(Kind::Overflow, format!("(* {x} {y})"))),
        Promoted::Floats(x, y) => Ok(Value::Float(x * y)),
        Promoted::Complexes(xr, xi, yr, yi) => {
            Ok(Value::Complex(xr * yr - xi * yi, xr * yi + xi * yr))
        }
    }
}

/// Generic `/`. Integer division produces an integer when exact, a float
/// otherwise (Lagoon has no exact rationals; see DESIGN.md).
pub fn div(a: &Value, b: &Value) -> Result<Value, RtError> {
    match promote("/", a, b)? {
        Promoted::Ints(x, y) => {
            if y == 0 {
                Err(RtError::new(Kind::DivideByZero, format!("(/ {x} 0)")))
            } else if x % y == 0 {
                Ok(Value::Int(x / y))
            } else {
                Ok(Value::Float(x as f64 / y as f64))
            }
        }
        Promoted::Floats(x, y) => Ok(Value::Float(x / y)),
        Promoted::Complexes(xr, xi, yr, yi) => {
            let d = yr * yr + yi * yi;
            Ok(Value::Complex(
                (xr * yr + xi * yi) / d,
                (xi * yr - xr * yi) / d,
            ))
        }
    }
}

/// Generic numeric comparison for `<`, `<=`, `>`, `>=` (reals only).
pub fn compare(op: &str, a: &Value, b: &Value) -> Result<std::cmp::Ordering, RtError> {
    match promote(op, a, b)? {
        Promoted::Ints(x, y) => Ok(x.cmp(&y)),
        Promoted::Floats(x, y) => x
            .partial_cmp(&y)
            .ok_or_else(|| RtError::type_error(format!("{op}: cannot compare NaN"))),
        Promoted::Complexes(..) => Err(RtError::type_error(format!(
            "{op}: complex numbers are not ordered"
        ))),
    }
}

/// Generic `=` (numeric equality across the tower, IEEE semantics —
/// `(= +nan.0 +nan.0)` is `#f`, `(= 0.0 -0.0)` is `#t`; contrast with
/// [`Value::eqv`]'s bitwise flonum rules).
pub fn num_eq(a: &Value, b: &Value) -> Result<bool, RtError> {
    match promote("=", a, b)? {
        Promoted::Ints(x, y) => Ok(x == y),
        Promoted::Floats(x, y) => Ok(x == y),
        Promoted::Complexes(xr, xi, yr, yi) => Ok(xr == yr && xi == yi),
    }
}

/// `quotient` on integers.
pub fn quotient(a: &Value, b: &Value) -> Result<Value, RtError> {
    match (a.as_int(), b.as_int()) {
        (Some(_), Some(0)) => Err(RtError::new(Kind::DivideByZero, "quotient by zero")),
        (Some(x), Some(y)) => Ok(Value::Int(x.wrapping_div(y))),
        _ => Err(RtError::type_error(format!(
            "quotient: expected integers, got {} and {}",
            a.write_string(),
            b.write_string()
        ))),
    }
}

/// `remainder` on integers (sign follows the dividend).
pub fn remainder(a: &Value, b: &Value) -> Result<Value, RtError> {
    match (a.as_int(), b.as_int()) {
        (Some(_), Some(0)) => Err(RtError::new(Kind::DivideByZero, "remainder by zero")),
        (Some(x), Some(y)) => Ok(Value::Int(x.wrapping_rem(y))),
        _ => Err(RtError::type_error("remainder: expected integers")),
    }
}

/// `modulo` on integers (sign follows the divisor).
pub fn modulo(a: &Value, b: &Value) -> Result<Value, RtError> {
    match (a.as_int(), b.as_int()) {
        (Some(_), Some(0)) => Err(RtError::new(Kind::DivideByZero, "modulo by zero")),
        (Some(x), Some(y)) => {
            let r = x.wrapping_rem(y);
            let m = if r != 0 && (r < 0) != (y < 0) {
                r + y
            } else {
                r
            };
            Ok(Value::Int(m))
        }
        _ => Err(RtError::type_error("modulo: expected integers")),
    }
}

/// `abs` / `magnitude` for reals; `magnitude` for complex.
pub fn magnitude(v: &Value) -> Result<Value, RtError> {
    match v.unpacked() {
        Unpacked::Int(n) => n
            .checked_abs()
            .map(Value::Int)
            .ok_or_else(|| RtError::new(Kind::Overflow, "(abs min-int)")),
        Unpacked::Float(x) => Ok(Value::Float(x.abs())),
        Unpacked::Complex(re, im) => Ok(Value::Float(re.hypot(im))),
        _ => Err(not_number("magnitude", v)),
    }
}

/// `sqrt`: stays exact when possible, goes inexact (or complex) otherwise.
pub fn sqrt(v: &Value) -> Result<Value, RtError> {
    match v.unpacked() {
        Unpacked::Int(n) if n >= 0 => {
            let r = (n as f64).sqrt();
            let ri = r as i64;
            if ri * ri == n {
                Ok(Value::Int(ri))
            } else {
                Ok(Value::Float(r))
            }
        }
        Unpacked::Int(n) => Ok(Value::Complex(0.0, ((-n) as f64).sqrt())),
        Unpacked::Float(x) if x >= 0.0 => Ok(Value::Float(x.sqrt())),
        Unpacked::Float(x) => Ok(Value::Complex(0.0, (-x).sqrt())),
        Unpacked::Complex(re, im) => {
            let m = re.hypot(im).sqrt();
            let theta = im.atan2(re) / 2.0;
            Ok(Value::Complex(m * theta.cos(), m * theta.sin()))
        }
        _ => Err(not_number("sqrt", v)),
    }
}

/// `expt` — exponentiation. Integer^non-negative-integer stays exact.
pub fn expt(a: &Value, b: &Value) -> Result<Value, RtError> {
    match (a.as_int(), b.as_int()) {
        (Some(x), Some(y)) if y >= 0 => {
            let mut acc: i64 = 1;
            for _ in 0..y {
                acc = acc
                    .checked_mul(x)
                    .ok_or_else(|| RtError::new(Kind::Overflow, format!("(expt {x} {y})")))?;
            }
            Ok(Value::Int(acc))
        }
        _ => match promote("expt", a, b)? {
            Promoted::Ints(x, y) => Ok(Value::Float((x as f64).powf(y as f64))),
            Promoted::Floats(x, y) => Ok(Value::Float(x.powf(y))),
            Promoted::Complexes(..) => Err(RtError::type_error("expt: complex not supported")),
        },
    }
}

/// Unary float transcendental functions (`sin`, `cos`, `tan`, `atan`,
/// `log`, `exp`), applied to reals.
pub fn float_unary(op: &str, v: &Value) -> Result<Value, RtError> {
    let x = match v.unpacked() {
        Unpacked::Int(n) => n as f64,
        Unpacked::Float(x) => x,
        _ => return Err(not_number(op, v)),
    };
    let y = match op {
        "sin" => x.sin(),
        "cos" => x.cos(),
        "tan" => x.tan(),
        "asin" => x.asin(),
        "acos" => x.acos(),
        "atan" => x.atan(),
        "log" => x.ln(),
        "exp" => x.exp(),
        _ => {
            return Err(RtError::new(
                Kind::Internal,
                format!("unknown float op {op}"),
            ))
        }
    };
    Ok(Value::Float(y))
}

/// `exact->inexact`.
pub fn to_inexact(v: &Value) -> Result<Value, RtError> {
    match v.unpacked() {
        Unpacked::Int(n) => Ok(Value::Float(n as f64)),
        Unpacked::Float(_) | Unpacked::Complex(_, _) => Ok(v.clone()),
        _ => Err(not_number("exact->inexact", v)),
    }
}

/// `inexact->exact` (truncating floats with integral values).
pub fn to_exact(v: &Value) -> Result<Value, RtError> {
    match v.unpacked() {
        Unpacked::Int(_) => Ok(v.clone()),
        Unpacked::Float(x) if x.fract() == 0.0 && x.abs() < i64::MAX as f64 => {
            Ok(Value::Int(x as i64))
        }
        Unpacked::Float(x) => Err(RtError::type_error(format!(
            "inexact->exact: {x} has no exact representation in Lagoon"
        ))),
        _ => Err(not_number("inexact->exact", v)),
    }
}

/// Rounding family: `floor`, `ceiling`, `round`, `truncate`.
pub fn round_family(op: &str, v: &Value) -> Result<Value, RtError> {
    match v.unpacked() {
        Unpacked::Int(_) => Ok(v.clone()),
        Unpacked::Float(x) => Ok(Value::Float(match op {
            "floor" => x.floor(),
            "ceiling" => x.ceil(),
            "round" => {
                // banker's rounding, like Racket
                let r = x.round();
                if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                    r - x.signum()
                } else {
                    r
                }
            }
            "truncate" => x.trunc(),
            _ => {
                return Err(RtError::new(
                    Kind::Internal,
                    format!("unknown rounding {op}"),
                ))
            }
        })),
        _ => Err(not_number(op, v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(n: i64) -> Value {
        Value::Int(n)
    }
    fn fl(x: f64) -> Value {
        Value::Float(x)
    }
    fn cpx(re: f64, im: f64) -> Value {
        Value::Complex(re, im)
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(add(&int(2), &int(3)).unwrap().as_int(), Some(5));
        assert_eq!(sub(&int(2), &int(3)).unwrap().as_int(), Some(-1));
        assert_eq!(mul(&int(4), &int(3)).unwrap().as_int(), Some(12));
        assert_eq!(div(&int(6), &int(3)).unwrap().as_int(), Some(2));
        assert_eq!(div(&int(7), &int(2)).unwrap().as_float(), Some(3.5));
    }

    #[test]
    fn promotion() {
        assert_eq!(add(&int(1), &fl(0.5)).unwrap().as_float(), Some(1.5));
        assert_eq!(mul(&fl(2.0), &int(3)).unwrap().as_float(), Some(6.0));
        assert_eq!(
            add(&fl(1.0), &cpx(2.0, 3.0)).unwrap().as_complex(),
            Some((3.0, 3.0))
        );
    }

    #[test]
    fn complex_mul_and_div() {
        // (2+2i) * (2+2i) = 8i
        assert_eq!(
            mul(&cpx(2.0, 2.0), &cpx(2.0, 2.0)).unwrap().as_complex(),
            Some((0.0, 8.0))
        );
        // the paper's loop: f / 2.0+2.0i
        assert_eq!(
            div(&cpx(4.0, 0.0), &cpx(2.0, 2.0)).unwrap().as_complex(),
            Some((1.0, -1.0))
        );
    }

    #[test]
    fn overflow_is_an_error() {
        assert_eq!(
            add(&int(i64::MAX), &int(1)).unwrap_err().kind,
            Kind::Overflow
        );
        assert_eq!(
            mul(&int(i64::MAX), &int(2)).unwrap_err().kind,
            Kind::Overflow
        );
    }

    #[test]
    fn wide_integers_survive_boxing() {
        // values past the 48-bit immediate range still behave like ints
        let big = (1i64 << 60) + 12345;
        assert_eq!(add(&int(big), &int(1)).unwrap().as_int(), Some(big + 1));
        assert_eq!(
            mul(&int(1 << 40), &int(1 << 20)).unwrap().as_int(),
            Some(1 << 60)
        );
        assert!(num_eq(&int(big), &int(big)).unwrap());
        assert_eq!(
            compare("<", &int(big), &int(big + 1)).unwrap(),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(div(&int(1), &int(0)).unwrap_err().kind, Kind::DivideByZero);
        // float division by zero is inf, not an error
        assert!(div(&fl(1.0), &fl(0.0))
            .unwrap()
            .as_float()
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn comparisons() {
        use std::cmp::Ordering::*;
        assert_eq!(compare("<", &int(1), &int(2)).unwrap(), Less);
        assert_eq!(compare("<", &fl(2.0), &int(2)).unwrap(), Equal);
        assert_eq!(compare("<", &int(3), &fl(2.5)).unwrap(), Greater);
        assert!(compare("<", &cpx(1.0, 1.0), &int(1)).is_err());
        assert!(num_eq(&int(2), &fl(2.0)).unwrap());
        assert!(num_eq(&cpx(1.0, 2.0), &cpx(1.0, 2.0)).unwrap());
    }

    #[test]
    fn magnitude_of_complex() {
        assert_eq!(magnitude(&cpx(3.0, 4.0)).unwrap().as_float(), Some(5.0));
        assert_eq!(magnitude(&int(-3)).unwrap().as_int(), Some(3));
    }

    #[test]
    fn sqrt_tower() {
        assert_eq!(sqrt(&int(9)).unwrap().as_int(), Some(3));
        assert!(sqrt(&int(2)).unwrap().is_float());
        assert_eq!(sqrt(&int(-4)).unwrap().as_complex(), Some((0.0, 2.0)));
        assert_eq!(sqrt(&fl(2.25)).unwrap().as_float(), Some(1.5));
    }

    #[test]
    fn quotient_remainder_modulo() {
        assert_eq!(quotient(&int(7), &int(2)).unwrap().as_int(), Some(3));
        assert_eq!(remainder(&int(7), &int(2)).unwrap().as_int(), Some(1));
        assert_eq!(remainder(&int(-7), &int(2)).unwrap().as_int(), Some(-1));
        assert_eq!(modulo(&int(-7), &int(2)).unwrap().as_int(), Some(1));
        assert_eq!(modulo(&int(7), &int(-2)).unwrap().as_int(), Some(-1));
        assert!(quotient(&int(1), &int(0)).is_err());
    }

    #[test]
    fn expt_exactness() {
        assert_eq!(expt(&int(2), &int(10)).unwrap().as_int(), Some(1024));
        assert!(expt(&int(2), &fl(0.5)).unwrap().is_float());
        assert_eq!(
            expt(&int(i64::MAX), &int(2)).unwrap_err().kind,
            Kind::Overflow
        );
    }

    #[test]
    fn rounding() {
        assert_eq!(
            round_family("floor", &fl(2.7)).unwrap().as_float(),
            Some(2.0)
        );
        assert_eq!(
            round_family("ceiling", &fl(2.2)).unwrap().as_float(),
            Some(3.0)
        );
        assert_eq!(
            round_family("round", &fl(2.5)).unwrap().as_float(),
            Some(2.0)
        );
        assert_eq!(
            round_family("round", &fl(3.5)).unwrap().as_float(),
            Some(4.0)
        );
        assert_eq!(
            round_family("truncate", &fl(-2.7)).unwrap().as_float(),
            Some(-2.0)
        );
    }

    #[test]
    fn exactness_conversions() {
        assert_eq!(to_inexact(&int(3)).unwrap().as_float(), Some(3.0));
        assert_eq!(to_exact(&fl(3.0)).unwrap().as_int(), Some(3));
        assert!(to_exact(&fl(3.5)).is_err());
    }

    #[test]
    fn type_errors_name_the_culprit() {
        let e = add(&Value::string("x"), &int(1)).unwrap_err();
        assert!(e.message.contains("\"x\""));
    }
}
