//! Runtime errors.
//!
//! Every failure the evaluator can signal is a [`RtError`] carrying a
//! [`Kind`], a message, and an optional source [`Span`]. Contract
//! violations (paper §6) carry blame information identifying which side of
//! a typed/untyped boundary broke the agreement.

use lagoon_syntax::{Span, Symbol};
use std::fmt;

/// The category of a runtime error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A value had the wrong runtime tag (e.g. `car` of a non-pair).
    Type,
    /// A procedure was applied to the wrong number of arguments.
    Arity,
    /// A variable had no binding at runtime.
    Unbound,
    /// Integer overflow (Lagoon substitutes checked `i64` for Racket's
    /// bignums; see DESIGN.md).
    Overflow,
    /// Division by exact zero.
    DivideByZero,
    /// An index was out of range.
    Range,
    /// A contract between modules was violated; the named party is blamed.
    Contract {
        /// The module blamed for the violation.
        blame: Symbol,
    },
    /// `(error ...)` was called by the program.
    User,
    /// A resource budget ran out — expansion/evaluation fuel, stack
    /// depth, a wall-clock deadline, or an injected fault (see
    /// `lagoon_diag::limits`).
    ResourceExhausted {
        /// The budget that ran out (`lagoon_diag::Budget::name`).
        budget: &'static str,
    },
    /// An internal invariant was broken (a bug in Lagoon itself).
    Internal,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Type => f.write_str("type error"),
            Kind::Arity => f.write_str("arity error"),
            Kind::Unbound => f.write_str("unbound variable"),
            Kind::Overflow => f.write_str("integer overflow"),
            Kind::DivideByZero => f.write_str("division by zero"),
            Kind::Range => f.write_str("index out of range"),
            Kind::Contract { blame } => write!(f, "contract violation (blaming {blame})"),
            Kind::User => f.write_str("error"),
            Kind::ResourceExhausted { budget } => write!(f, "resource exhausted ({budget})"),
            Kind::Internal => f.write_str("internal error"),
        }
    }
}

/// The payload of an [`RtError`]. Its fields are readable directly on
/// the error itself (`e.kind`, `e.message`, `e.span`) via `Deref`.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrData {
    /// What went wrong.
    pub kind: Kind,
    /// Human-readable details.
    pub message: String,
    /// Source position, when known.
    pub span: Option<Span>,
}

/// A runtime error.
///
/// The payload is boxed so `RtError` is a single pointer: errors thread
/// through deeply recursive code (expander, interpreter, compiler), and a
/// by-value error type inflates every `Result` temporary on the way down
/// — enough to matter for host stack headroom in debug builds.
#[derive(Clone, Debug, PartialEq)]
pub struct RtError(Box<ErrData>);

// the whole point of the box: keep error Results pointer-thin
const _: () = assert!(std::mem::size_of::<RtError>() == std::mem::size_of::<usize>());

impl std::ops::Deref for RtError {
    type Target = ErrData;
    fn deref(&self) -> &ErrData {
        &self.0
    }
}

impl std::ops::DerefMut for RtError {
    fn deref_mut(&mut self) -> &mut ErrData {
        &mut self.0
    }
}

impl RtError {
    /// A new error of the given kind.
    pub fn new(kind: Kind, message: impl Into<String>) -> RtError {
        RtError(Box::new(ErrData {
            kind,
            message: message.into(),
            span: None,
        }))
    }

    /// A tag/type error.
    pub fn type_error(message: impl Into<String>) -> RtError {
        RtError::new(Kind::Type, message)
    }

    /// An arity error.
    pub fn arity(message: impl Into<String>) -> RtError {
        RtError::new(Kind::Arity, message)
    }

    /// An unbound-variable error.
    pub fn unbound(name: Symbol) -> RtError {
        RtError::new(Kind::Unbound, name.as_str())
    }

    /// A contract violation blaming `blame`.
    pub fn contract(blame: Symbol, message: impl Into<String>) -> RtError {
        RtError::new(Kind::Contract { blame }, message)
    }

    /// A user-raised error.
    pub fn user(message: impl Into<String>) -> RtError {
        RtError::new(Kind::User, message)
    }

    /// Attaches a source span (keeps an existing one).
    pub fn with_span(mut self, span: Span) -> RtError {
        self.0.span.get_or_insert(span);
        self
    }

    /// True for budget-exhaustion errors (any budget).
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self.kind, Kind::ResourceExhausted { .. })
    }
}

impl From<lagoon_diag::Exhausted> for RtError {
    fn from(e: lagoon_diag::Exhausted) -> RtError {
        RtError::new(
            Kind::ResourceExhausted {
                budget: e.budget.name(),
            },
            e.to_string(),
        )
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) if !span.is_synthetic() => {
                write!(f, "{}: {} at {}", self.kind, self.message, span)
            }
            _ => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = RtError::type_error("car: expected pair, got 7");
        assert_eq!(e.to_string(), "type error: car: expected pair, got 7");
    }

    #[test]
    fn contract_errors_carry_blame() {
        let e = RtError::contract(Symbol::from("client"), "expected Integer, got \"x\"");
        match &e.kind {
            Kind::Contract { blame } => assert_eq!(blame.as_str(), "client"),
            _ => panic!("wrong kind"),
        }
        assert!(e.to_string().contains("blaming client"));
    }

    #[test]
    fn with_span_keeps_first() {
        let s1 = Span::new(Symbol::from("a"), 0, 1, 1, 1);
        let s2 = Span::new(Symbol::from("b"), 0, 1, 2, 2);
        let e = RtError::user("boom").with_span(s1).with_span(s2);
        assert_eq!(e.span.unwrap().line, 1);
    }
}
