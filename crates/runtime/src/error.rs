//! Runtime errors.
//!
//! Every failure the evaluator can signal is a [`RtError`] carrying a
//! [`Kind`], a message, and an optional source [`Span`]. Contract
//! violations (paper §6) carry blame information identifying which side of
//! a typed/untyped boundary broke the agreement.

use lagoon_syntax::{Span, Symbol};
use std::fmt;

/// The category of a runtime error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A value had the wrong runtime tag (e.g. `car` of a non-pair).
    Type,
    /// A procedure was applied to the wrong number of arguments.
    Arity,
    /// A variable had no binding at runtime.
    Unbound,
    /// Integer overflow (Lagoon substitutes checked `i64` for Racket's
    /// bignums; see DESIGN.md).
    Overflow,
    /// Division by exact zero.
    DivideByZero,
    /// An index was out of range.
    Range,
    /// A contract between modules was violated; the named party is blamed.
    Contract {
        /// The module blamed for the violation.
        blame: Symbol,
    },
    /// `(error ...)` was called by the program.
    User,
    /// An internal invariant was broken (a bug in Lagoon itself).
    Internal,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Type => f.write_str("type error"),
            Kind::Arity => f.write_str("arity error"),
            Kind::Unbound => f.write_str("unbound variable"),
            Kind::Overflow => f.write_str("integer overflow"),
            Kind::DivideByZero => f.write_str("division by zero"),
            Kind::Range => f.write_str("index out of range"),
            Kind::Contract { blame } => write!(f, "contract violation (blaming {blame})"),
            Kind::User => f.write_str("error"),
            Kind::Internal => f.write_str("internal error"),
        }
    }
}

/// A runtime error.
#[derive(Clone, Debug, PartialEq)]
pub struct RtError {
    /// What went wrong.
    pub kind: Kind,
    /// Human-readable details.
    pub message: String,
    /// Source position, when known.
    pub span: Option<Span>,
}

impl RtError {
    /// A new error of the given kind.
    pub fn new(kind: Kind, message: impl Into<String>) -> RtError {
        RtError {
            kind,
            message: message.into(),
            span: None,
        }
    }

    /// A tag/type error.
    pub fn type_error(message: impl Into<String>) -> RtError {
        RtError::new(Kind::Type, message)
    }

    /// An arity error.
    pub fn arity(message: impl Into<String>) -> RtError {
        RtError::new(Kind::Arity, message)
    }

    /// An unbound-variable error.
    pub fn unbound(name: Symbol) -> RtError {
        RtError::new(Kind::Unbound, name.as_str())
    }

    /// A contract violation blaming `blame`.
    pub fn contract(blame: Symbol, message: impl Into<String>) -> RtError {
        RtError::new(Kind::Contract { blame }, message)
    }

    /// A user-raised error.
    pub fn user(message: impl Into<String>) -> RtError {
        RtError::new(Kind::User, message)
    }

    /// Attaches a source span (keeps an existing one).
    pub fn with_span(mut self, span: Span) -> RtError {
        self.span.get_or_insert(span);
        self
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) if !span.is_synthetic() => {
                write!(f, "{}: {} at {}", self.kind, self.message, span)
            }
            _ => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = RtError::type_error("car: expected pair, got 7");
        assert_eq!(e.to_string(), "type error: car: expected pair, got 7");
    }

    #[test]
    fn contract_errors_carry_blame() {
        let e = RtError::contract(Symbol::from("client"), "expected Integer, got \"x\"");
        match &e.kind {
            Kind::Contract { blame } => assert_eq!(blame.as_str(), "client"),
            _ => panic!("wrong kind"),
        }
        assert!(e.to_string().contains("blaming client"));
    }

    #[test]
    fn with_span_keeps_first() {
        let s1 = Span::new(Symbol::from("a"), 0, 1, 1, 1);
        let s2 = Span::new(Symbol::from("b"), 0, 1, 2, 2);
        let e = RtError::user("boom").with_span(s1).with_span(s2);
        assert_eq!(e.span.unwrap().line, 1);
    }
}
