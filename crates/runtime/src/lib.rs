//! # lagoon-runtime
//!
//! The runtime substrate of Lagoon: the uniform tagged [`Value`]
//! representation, the generic (tag-dispatching) numeric tower
//! ([`number`]), the primitive library ([`prim::primitives`]) including
//! the `unsafe-*` type-specialized operations the paper's optimizer
//! targets, and run-time [`Contract`]s for typed/untyped interoperation.
//!
//! The evaluation engines live in `lagoon-vm`; this crate is engine
//! agnostic.

#![warn(missing_docs)]

pub mod contract;
pub mod error;
pub mod io;
pub mod number;
pub mod prim;
pub mod value;

pub use contract::{apply_contract, Contract};
pub use error::{Kind, RtError};
pub use value::{Arity, Closure, Contracted, Native, NativeFn, Pair, Unpacked, Value};
