//! Program output plumbing.
//!
//! `display`, `printf`, etc. write through [`port_write`], which normally
//! goes to stdout but can be redirected to a capture buffer with
//! [`capture_output`] — tests and the benchmark harness use this to check
//! what a hosted program printed (e.g. the `count` language example's
//! `Found 2 expressions.*3*1`).

use std::cell::RefCell;

thread_local! {
    static CAPTURE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Writes `s` to the current output port (stdout, or the active capture).
pub fn port_write(s: &str) {
    CAPTURE.with(|c| {
        let mut c = c.borrow_mut();
        match c.as_mut() {
            Some(buf) => buf.push_str(s),
            None => print!("{s}"),
        }
    });
}

/// Runs `f` with program output captured, returning `(f(), captured)`.
///
/// Nested captures are not supported: the inner capture wins until it
/// finishes.
pub fn capture_output<R>(f: impl FnOnce() -> R) -> (R, String) {
    let prev = CAPTURE.with(|c| c.borrow_mut().replace(String::new()));
    let result = f();
    let captured = CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        let out = slot.take().unwrap_or_default();
        *slot = prev;
        out
    });
    (result, captured)
}

/// Formats using Racket-style `format` directives:
/// `~a` (display), `~s`/`~v` (write), `~%`/`~n` (newline), `~~` (tilde).
///
/// # Errors
///
/// Returns a message if directives and arguments don't line up.
pub fn racket_format(fmt: &str, args: &[crate::value::Value]) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut next_arg = 0usize;
    while let Some(c) = chars.next() {
        if c != '~' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('a') | Some('A') => {
                let v = args
                    .get(next_arg)
                    .ok_or_else(|| format!("format: too few arguments for {fmt:?}"))?;
                out.push_str(&v.to_string());
                next_arg += 1;
            }
            Some('s') | Some('S') | Some('v') | Some('V') => {
                let v = args
                    .get(next_arg)
                    .ok_or_else(|| format!("format: too few arguments for {fmt:?}"))?;
                out.push_str(&v.write_string());
                next_arg += 1;
            }
            Some('%') | Some('n') => out.push('\n'),
            Some('~') => out.push('~'),
            Some(other) => return Err(format!("format: unknown directive ~{other}")),
            None => return Err("format: dangling ~".to_string()),
        }
    }
    if next_arg != args.len() {
        return Err(format!(
            "format: {} extra argument(s) for {fmt:?}",
            args.len() - next_arg
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn capture_captures() {
        let ((), out) = capture_output(|| port_write("hello"));
        assert_eq!(out, "hello");
    }

    #[test]
    fn capture_restores_previous() {
        let ((), outer) = capture_output(|| {
            port_write("a");
            let ((), inner) = capture_output(|| port_write("b"));
            assert_eq!(inner, "b");
            port_write("c");
        });
        assert_eq!(outer, "ac");
    }

    #[test]
    fn format_directives() {
        let s = racket_format("*~a*", &[Value::Int(3)]).unwrap();
        assert_eq!(s, "*3*");
        let s = racket_format("~s and ~a~%", &[Value::string("x"), Value::string("y")]).unwrap();
        assert_eq!(s, "\"x\" and y\n");
        let s = racket_format("~~", &[]).unwrap();
        assert_eq!(s, "~");
    }

    #[test]
    fn format_arity_errors() {
        assert!(racket_format("~a", &[]).is_err());
        assert!(racket_format("x", &[Value::Int(1)]).is_err());
        assert!(racket_format("~q", &[]).is_err());
    }
}
