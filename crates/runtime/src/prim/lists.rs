//! Pair and list primitives.

use super::def;
use crate::error::RtError;
use crate::value::{Arity, Pair, Value};

fn expect_pair(name: &str, v: &Value) -> Result<std::rc::Rc<Pair>, RtError> {
    match v.to_pair_rc() {
        Some(p) => Ok(p),
        None => Err(RtError::type_error(format!(
            "{name}: expected pair, got {}",
            v.write_string()
        ))),
    }
}

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    def(out, "cons", Arity::exactly(2), |args| {
        Ok(Value::cons(args[0].clone(), args[1].clone()))
    });
    def(out, "car", Arity::exactly(1), |args| {
        Ok(expect_pair("car", &args[0])?.0.clone())
    });
    def(out, "cdr", Arity::exactly(1), |args| {
        Ok(expect_pair("cdr", &args[0])?.1.clone())
    });
    def(out, "caar", Arity::exactly(1), |args| {
        Ok(expect_pair("caar", &expect_pair("caar", &args[0])?.0)?
            .0
            .clone())
    });
    def(out, "cadr", Arity::exactly(1), |args| {
        Ok(expect_pair("cadr", &expect_pair("cadr", &args[0])?.1)?
            .0
            .clone())
    });
    def(out, "cdar", Arity::exactly(1), |args| {
        Ok(expect_pair("cdar", &expect_pair("cdar", &args[0])?.0)?
            .1
            .clone())
    });
    def(out, "cddr", Arity::exactly(1), |args| {
        Ok(expect_pair("cddr", &expect_pair("cddr", &args[0])?.1)?
            .1
            .clone())
    });
    def(out, "caddr", Arity::exactly(1), |args| {
        let cdr = expect_pair("caddr", &args[0])?.1.clone();
        let cddr = expect_pair("caddr", &cdr)?.1.clone();
        Ok(expect_pair("caddr", &cddr)?.0.clone())
    });

    def(out, "pair?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_pair().is_some()))
    });
    def(out, "null?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_nil()))
    });
    def(out, "list?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].list_to_vec().is_some()))
    });

    def(out, "list", Arity::at_least(0), |args| {
        Ok(Value::list(args.to_vec()))
    });
    def(out, "length", Arity::exactly(1), |args| {
        let items = args[0].list_to_vec().ok_or_else(|| {
            RtError::type_error(format!(
                "length: expected list, got {}",
                args[0].write_string()
            ))
        })?;
        Ok(Value::Int(items.len() as i64))
    });
    def(out, "append", Arity::at_least(0), |args| {
        let Some((last, init)) = args.split_last() else {
            return Ok(Value::Nil);
        };
        let mut acc = last.clone();
        for l in init.iter().rev() {
            let items = l.list_to_vec().ok_or_else(|| {
                RtError::type_error(format!("append: expected list, got {}", l.write_string()))
            })?;
            for item in items.into_iter().rev() {
                acc = Value::cons(item, acc);
            }
        }
        Ok(acc)
    });
    def(out, "reverse", Arity::exactly(1), |args| {
        let mut acc = Value::Nil;
        let mut cur = args[0].clone();
        loop {
            if cur.is_nil() {
                return Ok(acc);
            }
            if let Some(p) = cur.as_pair() {
                acc = Value::cons(p.0.clone(), acc);
                let next = p.1.clone();
                cur = next;
            } else {
                return Err(RtError::type_error(format!(
                    "reverse: expected list, got {}",
                    cur.write_string()
                )));
            }
        }
    });
    def(out, "list-ref", Arity::exactly(2), |args| {
        let n = match args[1].as_int() {
            Some(n) if n >= 0 => n as usize,
            _ => {
                return Err(RtError::type_error(format!(
                    "list-ref: bad index {}",
                    args[1]
                )))
            }
        };
        let mut cur = args[0].clone();
        for _ in 0..n {
            cur = expect_pair("list-ref", &cur)?.1.clone();
        }
        Ok(expect_pair("list-ref", &cur)?.0.clone())
    });
    def(out, "list-tail", Arity::exactly(2), |args| {
        let n = match args[1].as_int() {
            Some(n) if n >= 0 => n as usize,
            _ => {
                return Err(RtError::type_error(format!(
                    "list-tail: bad index {}",
                    args[1]
                )))
            }
        };
        let mut cur = args[0].clone();
        for _ in 0..n {
            cur = expect_pair("list-tail", &cur)?.1.clone();
        }
        Ok(cur)
    });

    def(out, "first", Arity::exactly(1), |args| {
        Ok(expect_pair("first", &args[0])?.0.clone())
    });
    def(out, "rest", Arity::exactly(1), |args| {
        Ok(expect_pair("rest", &args[0])?.1.clone())
    });
    def(out, "second", Arity::exactly(1), |args| {
        let cdr = expect_pair("second", &args[0])?.1.clone();
        Ok(expect_pair("second", &cdr)?.0.clone())
    });
    def(out, "third", Arity::exactly(1), |args| {
        let cdr = expect_pair("third", &args[0])?.1.clone();
        let cddr = expect_pair("third", &cdr)?.1.clone();
        Ok(expect_pair("third", &cddr)?.0.clone())
    });
    def(out, "last", Arity::exactly(1), |args| {
        args[0]
            .list_to_vec()
            .and_then(|v| v.last().cloned())
            .ok_or_else(|| RtError::type_error("last: expected non-empty list"))
    });

    def(out, "memq", Arity::exactly(2), |args| {
        member_by(args, Value::eq_identity)
    });
    def(out, "memv", Arity::exactly(2), |args| {
        member_by(args, Value::eqv)
    });
    def(out, "member", Arity::exactly(2), |args| {
        member_by(args, Value::equal)
    });
    def(out, "assq", Arity::exactly(2), |args| {
        assoc_by(args, Value::eq_identity)
    });
    def(out, "assv", Arity::exactly(2), |args| {
        assoc_by(args, Value::eqv)
    });
    def(out, "assoc", Arity::exactly(2), |args| {
        assoc_by(args, Value::equal)
    });
}

fn member_by(args: &[Value], eq: fn(&Value, &Value) -> bool) -> Result<Value, RtError> {
    let mut cur = args[1].clone();
    loop {
        if cur.is_nil() {
            return Ok(Value::Bool(false));
        }
        if let Some(p) = cur.as_pair() {
            if eq(&p.0, &args[0]) {
                return Ok(cur.clone());
            }
            let next = p.1.clone();
            cur = next;
        } else {
            return Err(RtError::type_error(format!(
                "member: expected list, got {}",
                cur.write_string()
            )));
        }
    }
}

fn assoc_by(args: &[Value], eq: fn(&Value, &Value) -> bool) -> Result<Value, RtError> {
    let mut cur = args[1].clone();
    loop {
        if cur.is_nil() {
            return Ok(Value::Bool(false));
        }
        if let Some(p) = cur.as_pair() {
            if let Some(entry) = p.0.as_pair() {
                if eq(&entry.0, &args[0]) {
                    return Ok(p.0.clone());
                }
            }
            let next = p.1.clone();
            cur = next;
        } else {
            return Err(RtError::type_error(format!(
                "assoc: expected list of pairs, got {}",
                cur.write_string()
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Result<Value, crate::error::RtError> {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    fn ilist(ns: &[i64]) -> Value {
        Value::list(ns.iter().map(|n| Value::Int(*n)).collect::<Vec<_>>())
    }

    #[test]
    fn cons_car_cdr() {
        let p = call("cons", &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(
            call("car", std::slice::from_ref(&p)).unwrap().as_int(),
            Some(1)
        );
        assert_eq!(call("cdr", &[p]).unwrap().as_int(), Some(2));
        assert!(call("car", &[Value::Int(7)]).is_err());
    }

    #[test]
    fn list_accessors() {
        let l = ilist(&[10, 20, 30]);
        let get = |name: &str| call(name, std::slice::from_ref(&l)).unwrap().as_int();
        assert_eq!(get("length"), Some(3));
        assert_eq!(get("first"), Some(10));
        assert_eq!(get("second"), Some(20));
        assert_eq!(get("third"), Some(30));
        assert_eq!(get("last"), Some(30));
        assert_eq!(
            call("list-ref", &[l.clone(), Value::Int(1)])
                .unwrap()
                .as_int(),
            Some(20)
        );
        assert!(call("list-ref", &[l, Value::Int(5)]).is_err());
    }

    #[test]
    fn append_and_reverse() {
        let r = call("append", &[ilist(&[1, 2]), ilist(&[3])]).unwrap();
        assert!(r.equal(&ilist(&[1, 2, 3])));
        let r = call("reverse", &[ilist(&[1, 2, 3])]).unwrap();
        assert!(r.equal(&ilist(&[3, 2, 1])));
        assert!(call("append", &[]).unwrap().is_nil());
    }

    #[test]
    fn member_family() {
        let l = ilist(&[1, 2, 3]);
        let hit = call("member", &[Value::Int(2), l.clone()]).unwrap();
        assert!(hit.equal(&ilist(&[2, 3])));
        let miss = call("member", &[Value::Int(9), l]).unwrap();
        assert!(!miss.is_truthy());
    }

    #[test]
    fn assoc_family() {
        let alist = Value::list(vec![
            Value::cons(Value::Symbol(Symbol::from("a")), Value::Int(1)),
            Value::cons(Value::Symbol(Symbol::from("b")), Value::Int(2)),
        ]);
        let hit = call("assq", &[Value::Symbol(Symbol::from("b")), alist.clone()]).unwrap();
        assert!(hit.equal(&Value::cons(
            Value::Symbol(Symbol::from("b")),
            Value::Int(2)
        )));
        let miss = call("assq", &[Value::Symbol(Symbol::from("z")), alist]).unwrap();
        assert!(!miss.is_truthy());
    }

    #[test]
    fn predicates() {
        assert!(call("pair?", &[ilist(&[1])]).unwrap().is_truthy());
        assert!(call("null?", &[Value::Nil]).unwrap().is_truthy());
        assert!(call("list?", &[ilist(&[1, 2])]).unwrap().is_truthy());
        assert!(!call("list?", &[Value::cons(Value::Int(1), Value::Int(2))])
            .unwrap()
            .is_truthy());
    }
}
