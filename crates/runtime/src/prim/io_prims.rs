//! Output primitives (`display`, `write`, `printf`, …).

use super::def;
use crate::error::RtError;
use crate::io::{port_write, racket_format};
use crate::value::{Arity, Value};

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    def(out, "display", Arity::exactly(1), |args| {
        port_write(&args[0].to_string());
        Ok(Value::Void)
    });
    def(out, "write", Arity::exactly(1), |args| {
        port_write(&args[0].write_string());
        Ok(Value::Void)
    });
    def(out, "print", Arity::exactly(1), |args| {
        port_write(&args[0].write_string());
        Ok(Value::Void)
    });
    def(out, "newline", Arity::exactly(0), |_| {
        port_write("\n");
        Ok(Value::Void)
    });
    def(out, "displayln", Arity::exactly(1), |args| {
        port_write(&args[0].to_string());
        port_write("\n");
        Ok(Value::Void)
    });
    def(out, "printf", Arity::at_least(1), |args| {
        let fmt = match args[0].to_str_rc() {
            Some(s) => s,
            None => {
                return Err(RtError::type_error(format!(
                    "printf: expected format string, got {}",
                    args[0].write_string()
                )))
            }
        };
        let s = racket_format(&fmt, &args[1..]).map_err(RtError::type_error)?;
        port_write(&s);
        Ok(Value::Void)
    });
}

#[cfg(test)]
mod tests {
    use crate::io::capture_output;
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Result<Value, crate::error::RtError> {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    #[test]
    fn display_vs_write() {
        let (_, out) = capture_output(|| {
            call("display", &[Value::string("hi")]).unwrap();
            call("write", &[Value::string("hi")]).unwrap();
            call("newline", &[]).unwrap();
        });
        assert_eq!(out, "hi\"hi\"\n");
    }

    #[test]
    fn printf_formats() {
        let (_, out) = capture_output(|| {
            call("printf", &[Value::string("*~a"), Value::Int(3)]).unwrap();
        });
        assert_eq!(out, "*3");
        assert!(call("printf", &[Value::Int(3)]).is_err());
    }
}
