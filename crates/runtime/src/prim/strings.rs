//! String primitives.

use super::def;
use crate::error::RtError;
use crate::io::racket_format;
use crate::value::{Arity, Value};
use lagoon_syntax::{parse_number, Symbol, Token};
use std::rc::Rc;

fn expect_str(name: &str, v: &Value) -> Result<Rc<String>, RtError> {
    match v.to_str_rc() {
        Some(s) => Ok(s),
        None => Err(RtError::type_error(format!(
            "{name}: expected string, got {}",
            v.write_string()
        ))),
    }
}

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    def(out, "string?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_string()))
    });
    def(out, "string-length", Arity::exactly(1), |args| {
        Ok(Value::Int(
            expect_str("string-length", &args[0])?.chars().count() as i64,
        ))
    });
    def(out, "string-append", Arity::at_least(0), |args| {
        let mut s = String::new();
        for v in args {
            s.push_str(&expect_str("string-append", v)?);
        }
        Ok(Value::string(&s))
    });
    def(out, "substring", Arity::at_least(2), |args| {
        let s = expect_str("substring", &args[0])?;
        let chars: Vec<char> = s.chars().collect();
        let start = match args[1].as_int() {
            Some(n) if n >= 0 => n as usize,
            _ => {
                return Err(RtError::type_error(format!(
                    "substring: bad start {}",
                    args[1]
                )))
            }
        };
        let end = match args.get(2) {
            None => chars.len(),
            Some(v) => match v.as_int() {
                Some(n) if n >= 0 => n as usize,
                _ => return Err(RtError::type_error(format!("substring: bad end {v}"))),
            },
        };
        if start > end || end > chars.len() {
            return Err(RtError::new(
                crate::error::Kind::Range,
                format!(
                    "substring: [{start}, {end}) out of range for length {}",
                    chars.len()
                ),
            ));
        }
        Ok(Value::string(&chars[start..end].iter().collect::<String>()))
    });
    def(out, "string-ref", Arity::exactly(2), |args| {
        let s = expect_str("string-ref", &args[0])?;
        let n = match args[1].as_int() {
            Some(n) if n >= 0 => n as usize,
            _ => {
                return Err(RtError::type_error(format!(
                    "string-ref: bad index {}",
                    args[1]
                )))
            }
        };
        s.chars().nth(n).map(Value::Char).ok_or_else(|| {
            RtError::new(
                crate::error::Kind::Range,
                format!("string-ref: index {n} out of range"),
            )
        })
    });
    def(out, "string=?", Arity::at_least(2), |args| {
        for w in args.windows(2) {
            if expect_str("string=?", &w[0])? != expect_str("string=?", &w[1])? {
                return Ok(Value::Bool(false));
            }
        }
        Ok(Value::Bool(true))
    });
    def(out, "string<?", Arity::exactly(2), |args| {
        Ok(Value::Bool(
            expect_str("string<?", &args[0])? < expect_str("string<?", &args[1])?,
        ))
    });
    def(out, "string-upcase", Arity::exactly(1), |args| {
        Ok(Value::string(
            &expect_str("string-upcase", &args[0])?.to_uppercase(),
        ))
    });
    def(out, "string-downcase", Arity::exactly(1), |args| {
        Ok(Value::string(
            &expect_str("string-downcase", &args[0])?.to_lowercase(),
        ))
    });
    def(out, "string->symbol", Arity::exactly(1), |args| {
        Ok(Value::Symbol(Symbol::intern(&expect_str(
            "string->symbol",
            &args[0],
        )?)))
    });
    def(
        out,
        "symbol->string",
        Arity::exactly(1),
        |args| match args[0].as_symbol() {
            Some(s) => Ok(s.with_str(Value::string)),
            None => Err(RtError::type_error(format!(
                "symbol->string: expected symbol, got {}",
                args[0]
            ))),
        },
    );
    def(out, "string->list", Arity::exactly(1), |args| {
        let s = expect_str("string->list", &args[0])?;
        Ok(Value::list(s.chars().map(Value::Char).collect::<Vec<_>>()))
    });
    def(out, "list->string", Arity::exactly(1), |args| {
        let items = args[0]
            .list_to_vec()
            .ok_or_else(|| RtError::type_error("list->string: expected list"))?;
        let mut s = String::new();
        for v in items {
            match v.as_char() {
                Some(c) => s.push(c),
                None => {
                    return Err(RtError::type_error(format!(
                        "list->string: expected character, got {v}"
                    )))
                }
            }
        }
        Ok(Value::string(&s))
    });
    def(out, "number->string", Arity::exactly(1), |args| {
        let v = &args[0];
        if v.is_int() || v.is_float() || v.is_complex() {
            Ok(Value::string(&v.to_string()))
        } else {
            Err(RtError::type_error(format!(
                "number->string: expected number, got {v}"
            )))
        }
    });
    def(out, "string->number", Arity::exactly(1), |args| {
        let s = expect_str("string->number", &args[0])?;
        Ok(match parse_number(&s) {
            Some(Token::Int(n)) => Value::Int(n),
            Some(Token::Float(x)) => Value::Float(x),
            Some(Token::Complex(re, im)) => Value::Complex(re, im),
            _ => Value::Bool(false),
        })
    });
    def(out, "format", Arity::at_least(1), |args| {
        let fmt = expect_str("format", &args[0])?;
        racket_format(&fmt, &args[1..])
            .map(|s| Value::string(&s))
            .map_err(RtError::type_error)
    });

    def(out, "string->bytes", Arity::exactly(1), |args| {
        // Lagoon models byte strings as lists of integers (see DESIGN.md's
        // md5 substitution).
        let s = expect_str("string->bytes", &args[0])?;
        Ok(Value::list(
            s.bytes().map(|b| Value::Int(b as i64)).collect::<Vec<_>>(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Result<Value, crate::error::RtError> {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    #[test]
    fn append_and_length() {
        let s = call("string-append", &[Value::string("ab"), Value::string("cd")]).unwrap();
        assert_eq!(s.to_string(), "abcd");
        assert_eq!(
            call("string-length", &[Value::string("héllo")])
                .unwrap()
                .as_int(),
            Some(5)
        );
    }

    #[test]
    fn substring_bounds() {
        let s = call(
            "substring",
            &[Value::string("hello"), Value::Int(1), Value::Int(3)],
        )
        .unwrap();
        assert_eq!(s.to_string(), "el");
        assert!(call(
            "substring",
            &[Value::string("x"), Value::Int(0), Value::Int(5)]
        )
        .is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(
            call("string->symbol", &[Value::string("abc")])
                .unwrap()
                .to_string(),
            "abc"
        );
        assert_eq!(
            call("number->string", &[Value::Float(2.5)])
                .unwrap()
                .to_string(),
            "2.5"
        );
        assert_eq!(
            call("string->number", &[Value::string("42")])
                .unwrap()
                .as_int(),
            Some(42)
        );
        assert_eq!(
            call("string->number", &[Value::string("nope")])
                .unwrap()
                .as_bool(),
            Some(false)
        );
    }

    #[test]
    fn format_prim() {
        let s = call("format", &[Value::string("x=~a"), Value::Int(7)]).unwrap();
        assert_eq!(s.to_string(), "x=7");
        assert!(call("format", &[Value::string("~a")]).is_err());
    }

    #[test]
    fn comparisons() {
        assert!(call("string=?", &[Value::string("a"), Value::string("a")])
            .unwrap()
            .is_truthy());
        assert!(call("string<?", &[Value::string("a"), Value::string("b")])
            .unwrap()
            .is_truthy());
    }
}
