//! Vector and box primitives.

use super::def;
use crate::error::RtError;
use crate::value::{Arity, Value};
use std::cell::RefCell;
use std::rc::Rc;

fn expect_vector(name: &str, v: &Value) -> Result<Rc<RefCell<Vec<Value>>>, RtError> {
    match v.to_vector_rc() {
        Some(v) => Ok(v),
        None => Err(RtError::type_error(format!(
            "{name}: expected vector, got {}",
            v.write_string()
        ))),
    }
}

fn expect_index(name: &str, v: &Value, len: usize) -> Result<usize, RtError> {
    match v.as_int() {
        Some(n) if n >= 0 && (n as usize) < len => Ok(n as usize),
        Some(n) => Err(RtError::new(
            crate::error::Kind::Range,
            format!("{name}: index {n} out of range for length {len}"),
        )),
        None => Err(RtError::type_error(format!(
            "{name}: expected index, got {}",
            v.write_string()
        ))),
    }
}

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    def(out, "vector", Arity::at_least(0), |args| {
        Ok(Value::Vector(Rc::new(RefCell::new(args.to_vec()))))
    });
    def(out, "make-vector", Arity::at_least(1), |args| {
        let n = match args[0].as_int() {
            Some(n) if n >= 0 => n as usize,
            _ => {
                return Err(RtError::type_error(format!(
                    "make-vector: bad length {}",
                    args[0]
                )))
            }
        };
        let fill = args.get(1).cloned().unwrap_or(Value::Int(0));
        Ok(Value::Vector(Rc::new(RefCell::new(vec![fill; n]))))
    });
    def(out, "vector?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_vector().is_some()))
    });
    def(out, "vector-length", Arity::exactly(1), |args| {
        Ok(Value::Int(
            expect_vector("vector-length", &args[0])?.borrow().len() as i64,
        ))
    });
    def(out, "vector-ref", Arity::exactly(2), |args| {
        let v = expect_vector("vector-ref", &args[0])?;
        let v = v.borrow();
        let i = expect_index("vector-ref", &args[1], v.len())?;
        Ok(v[i].clone())
    });
    def(out, "vector-set!", Arity::exactly(3), |args| {
        let v = expect_vector("vector-set!", &args[0])?;
        let mut v = v.borrow_mut();
        let len = v.len();
        let i = expect_index("vector-set!", &args[1], len)?;
        v[i] = args[2].clone();
        Ok(Value::Void)
    });
    def(out, "vector-fill!", Arity::exactly(2), |args| {
        let v = expect_vector("vector-fill!", &args[0])?;
        for slot in v.borrow_mut().iter_mut() {
            *slot = args[1].clone();
        }
        Ok(Value::Void)
    });
    def(out, "vector->list", Arity::exactly(1), |args| {
        Ok(Value::list(
            expect_vector("vector->list", &args[0])?.borrow().clone(),
        ))
    });
    def(out, "list->vector", Arity::exactly(1), |args| {
        let items = args[0]
            .list_to_vec()
            .ok_or_else(|| RtError::type_error("list->vector: expected list"))?;
        Ok(Value::Vector(Rc::new(RefCell::new(items))))
    });
    def(out, "vector-copy", Arity::exactly(1), |args| {
        Ok(Value::Vector(Rc::new(RefCell::new(
            expect_vector("vector-copy", &args[0])?.borrow().clone(),
        ))))
    });

    def(out, "box", Arity::exactly(1), |args| {
        Ok(Value::Box(Rc::new(RefCell::new(args[0].clone()))))
    });
    def(out, "box?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_box().is_some()))
    });
    def(out, "unbox", Arity::exactly(1), |args| {
        match args[0].as_box() {
            Some(b) => Ok(b.borrow().clone()),
            None => Err(RtError::type_error(format!(
                "unbox: expected box, got {}",
                args[0]
            ))),
        }
    });
    def(out, "set-box!", Arity::exactly(2), |args| {
        match args[0].as_box() {
            Some(b) => {
                *b.borrow_mut() = args[1].clone();
                Ok(Value::Void)
            }
            None => Err(RtError::type_error(format!(
                "set-box!: expected box, got {}",
                args[0]
            ))),
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Result<Value, crate::error::RtError> {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    #[test]
    fn vector_lifecycle() {
        let v = call("make-vector", &[Value::Int(3), Value::Int(7)]).unwrap();
        assert_eq!(
            call("vector-length", std::slice::from_ref(&v))
                .unwrap()
                .as_int(),
            Some(3)
        );
        assert_eq!(
            call("vector-ref", &[v.clone(), Value::Int(1)])
                .unwrap()
                .as_int(),
            Some(7)
        );
        call("vector-set!", &[v.clone(), Value::Int(1), Value::Int(9)]).unwrap();
        assert_eq!(
            call("vector-ref", &[v.clone(), Value::Int(1)])
                .unwrap()
                .as_int(),
            Some(9)
        );
        assert!(call("vector-ref", &[v, Value::Int(3)]).is_err());
    }

    #[test]
    fn list_conversions() {
        let l = Value::list(vec![Value::Int(1), Value::Int(2)]);
        let v = call("list->vector", std::slice::from_ref(&l)).unwrap();
        let back = call("vector->list", &[v]).unwrap();
        assert!(back.equal(&l));
    }

    #[test]
    fn boxes() {
        let b = call("box", &[Value::Int(1)]).unwrap();
        assert_eq!(
            call("unbox", std::slice::from_ref(&b)).unwrap().as_int(),
            Some(1)
        );
        call("set-box!", &[b.clone(), Value::Int(2)]).unwrap();
        assert_eq!(call("unbox", &[b]).unwrap().as_int(), Some(2));
        assert!(call("unbox", &[Value::Int(3)]).is_err());
    }

    #[test]
    fn vector_copy_is_shallow_fresh() {
        let v = call("vector", &[Value::Int(1)]).unwrap();
        let c = call("vector-copy", std::slice::from_ref(&v)).unwrap();
        call("vector-set!", &[v, Value::Int(0), Value::Int(5)]).unwrap();
        assert_eq!(
            call("vector-ref", &[c, Value::Int(0)]).unwrap().as_int(),
            Some(1)
        );
    }
}
