//! Miscellaneous primitives: equality, predicates, errors, time, random.

use super::def;
use crate::error::RtError;
use crate::value::{Arity, Value};
use lagoon_syntax::Symbol;
use std::cell::Cell;

thread_local! {
    // xorshift64* state for `random`; deterministic per thread unless
    // reseeded with `random-seed`.
    static RNG: Cell<u64> = const { Cell::new(0x9E3779B97F4A7C15) };
}

fn next_u64() -> u64 {
    RNG.with(|state| {
        let mut x = state.get();
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state.set(x);
        x.wrapping_mul(0x2545F4914F6CDD1D)
    })
}

pub(super) fn install(out: &mut Vec<(Symbol, Value)>) {
    def(out, "not", Arity::exactly(1), |args| {
        Ok(Value::Bool(!args[0].is_truthy()))
    });
    def(out, "eq?", Arity::exactly(2), |args| {
        Ok(Value::Bool(args[0].eq_identity(&args[1])))
    });
    def(out, "eqv?", Arity::exactly(2), |args| {
        Ok(Value::Bool(args[0].eqv(&args[1])))
    });
    def(out, "equal?", Arity::exactly(2), |args| {
        Ok(Value::Bool(args[0].equal(&args[1])))
    });

    def(out, "boolean?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_bool().is_some()))
    });
    def(out, "symbol?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_symbol().is_some()))
    });
    def(out, "keyword?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_keyword().is_some()))
    });
    def(out, "procedure?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_procedure()))
    });
    def(out, "void?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_void()))
    });
    def(out, "void", Arity::at_least(0), |_| Ok(Value::Void));

    // ----- multiple values -----
    //
    // `(values x)` is just `x`; other counts package into
    // `Value::Values`, unpacked by `call-with-values` (an engine
    // intercept, like `apply`) and by the `let-values`/`define-values`
    // desugaring through the two `#%values-*` helpers below.
    def(out, "values", Arity::at_least(0), |args| {
        if args.len() == 1 {
            Ok(args[0].clone())
        } else {
            Ok(Value::Values(std::rc::Rc::new(args.to_vec())))
        }
    });
    // (#%values-check v n): v must be a package of exactly n values
    // (a non-package counts as one value); returns v unchanged
    def(out, "#%values-check", Arity::exactly(2), |args| {
        let expected = match args[1].as_int() {
            Some(n) if n >= 0 => n as usize,
            _ => {
                return Err(RtError::type_error(format!(
                    "#%values-check: expected a count, got {}",
                    args[1].write_string()
                )))
            }
        };
        let got = args[0].as_values().map_or(1, |vs| vs.len());
        if got != expected {
            return Err(RtError::arity(format!(
                "expected {expected} values, received {got}: {}",
                args[0].write_string()
            )));
        }
        Ok(args[0].clone())
    });
    // (#%values-ref v i n): the i-th of n bound values
    def(out, "#%values-ref", Arity::exactly(3), |args| {
        let idx = match args[1].as_int() {
            Some(n) if n >= 0 => n as usize,
            _ => {
                return Err(RtError::type_error(format!(
                    "#%values-ref: expected an index, got {}",
                    args[1].write_string()
                )))
            }
        };
        match args[0].as_values() {
            Some(vs) => vs.get(idx).cloned().ok_or_else(|| {
                RtError::arity(format!(
                    "#%values-ref: index {idx} out of range for {} values",
                    vs.len()
                ))
            }),
            None if idx == 0 => Ok(args[0].clone()),
            None => Err(RtError::arity(format!(
                "#%values-ref: index {idx} out of range for single value {}",
                args[0].write_string()
            ))),
        }
    });

    def(out, "error", Arity::at_least(1), |args| {
        let msg = args
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        Err(RtError::user(msg))
    });

    def(out, "gensym", Arity::at_least(0), |args| {
        let base = match args.first() {
            Some(v) => match (v.as_symbol(), v.as_str()) {
                (Some(s), _) => s.as_str(),
                (None, Some(s)) => s.to_string(),
                _ => "g".to_string(),
            },
            None => "g".to_string(),
        };
        Ok(Value::Symbol(Symbol::fresh(&base)))
    });

    def(out, "current-seconds", Arity::exactly(0), |_| {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs() as i64)
            .unwrap_or(0);
        Ok(Value::Int(secs))
    });
    def(
        out,
        "current-inexact-milliseconds",
        Arity::exactly(0),
        |_| {
            let ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs_f64() * 1000.0)
                .unwrap_or(0.0);
            Ok(Value::Float(ms))
        },
    );

    def(out, "random", Arity::at_least(0), |args| {
        match args.first() {
            None => Ok(Value::Float(
                (next_u64() >> 11) as f64 / (1u64 << 53) as f64,
            )),
            Some(v) => match v.as_int() {
                Some(n) if n > 0 => Ok(Value::Int((next_u64() % (n as u64)) as i64)),
                _ => Err(RtError::type_error(format!(
                    "random: expected positive integer, got {}",
                    v.write_string()
                ))),
            },
        }
    });
    def(out, "random-seed", Arity::exactly(1), |args| {
        match args[0].as_int() {
            Some(n) => {
                RNG.with(|state| state.set((n as u64) | 1));
                Ok(Value::Void)
            }
            None => Err(RtError::type_error(format!(
                "random-seed: expected integer, got {}",
                args[0]
            ))),
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Result<Value, crate::error::RtError> {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    #[test]
    fn not_and_equality() {
        assert!(call("not", &[Value::Bool(false)]).unwrap().is_truthy());
        assert!(!call("not", &[Value::Int(0)]).unwrap().is_truthy());
        assert!(call("equal?", &[Value::string("a"), Value::string("a")])
            .unwrap()
            .is_truthy());
        assert!(!call("eq?", &[Value::string("a"), Value::string("a")])
            .unwrap()
            .is_truthy());
    }

    #[test]
    fn error_raises_user_error() {
        let e = call("error", &[Value::string("boom"), Value::Int(3)]).unwrap_err();
        assert_eq!(e.kind, crate::error::Kind::User);
        assert!(e.message.contains("boom 3"));
    }

    #[test]
    fn gensym_is_fresh() {
        let a = call("gensym", &[]).unwrap();
        let b = call("gensym", &[]).unwrap();
        assert!(!a.eq_identity(&b));
    }

    #[test]
    fn random_is_deterministic_after_seed() {
        call("random-seed", &[Value::Int(42)]).unwrap();
        let a = call("random", &[Value::Int(1000)]).unwrap();
        call("random-seed", &[Value::Int(42)]).unwrap();
        let b = call("random", &[Value::Int(1000)]).unwrap();
        assert!(a.eq_identity(&b));
        assert!(call("random", &[Value::Int(0)]).is_err());
    }

    #[test]
    fn current_seconds_is_positive() {
        let v = call("current-seconds", &[]).unwrap();
        assert!(v.as_int().is_some_and(|n| n > 1_000_000_000));
    }
}
