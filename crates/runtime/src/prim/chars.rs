//! Character primitives.

use super::def;
use crate::error::RtError;
use crate::value::{Arity, Value};

fn expect_char(name: &str, v: &Value) -> Result<char, RtError> {
    match v.as_char() {
        Some(c) => Ok(c),
        None => Err(RtError::type_error(format!(
            "{name}: expected character, got {}",
            v.write_string()
        ))),
    }
}

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    def(out, "char?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_char().is_some()))
    });
    def(out, "char->integer", Arity::exactly(1), |args| {
        Ok(Value::Int(expect_char("char->integer", &args[0])? as i64))
    });
    def(out, "integer->char", Arity::exactly(1), |args| {
        match args[0].as_int() {
            Some(n) => char::from_u32(n as u32).map(Value::Char).ok_or_else(|| {
                RtError::new(
                    crate::error::Kind::Range,
                    format!("integer->char: {n} is not a scalar value"),
                )
            }),
            None => Err(RtError::type_error(format!(
                "integer->char: expected integer, got {}",
                args[0]
            ))),
        }
    });
    def(out, "char=?", Arity::at_least(2), |args| {
        for w in args.windows(2) {
            if expect_char("char=?", &w[0])? != expect_char("char=?", &w[1])? {
                return Ok(Value::Bool(false));
            }
        }
        Ok(Value::Bool(true))
    });
    def(out, "char<?", Arity::exactly(2), |args| {
        Ok(Value::Bool(
            expect_char("char<?", &args[0])? < expect_char("char<?", &args[1])?,
        ))
    });
    def(out, "char-alphabetic?", Arity::exactly(1), |args| {
        Ok(Value::Bool(
            expect_char("char-alphabetic?", &args[0])?.is_alphabetic(),
        ))
    });
    def(out, "char-numeric?", Arity::exactly(1), |args| {
        Ok(Value::Bool(
            expect_char("char-numeric?", &args[0])?.is_numeric(),
        ))
    });
    def(out, "char-whitespace?", Arity::exactly(1), |args| {
        Ok(Value::Bool(
            expect_char("char-whitespace?", &args[0])?.is_whitespace(),
        ))
    });
    def(out, "char-upcase", Arity::exactly(1), |args| {
        Ok(Value::Char(
            expect_char("char-upcase", &args[0])?.to_ascii_uppercase(),
        ))
    });
    def(out, "char-downcase", Arity::exactly(1), |args| {
        Ok(Value::Char(
            expect_char("char-downcase", &args[0])?.to_ascii_lowercase(),
        ))
    });
}

#[cfg(test)]
mod tests {
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Result<Value, crate::error::RtError> {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    #[test]
    fn char_integer_round_trip() {
        assert_eq!(
            call("char->integer", &[Value::Char('A')]).unwrap().as_int(),
            Some(65)
        );
        assert_eq!(
            call("integer->char", &[Value::Int(97)]).unwrap().as_char(),
            Some('a')
        );
        assert!(call("integer->char", &[Value::Int(-1)]).is_err());
    }

    #[test]
    fn classification() {
        assert!(call("char-alphabetic?", &[Value::Char('x')])
            .unwrap()
            .is_truthy());
        assert!(call("char-numeric?", &[Value::Char('7')])
            .unwrap()
            .is_truthy());
        assert!(call("char-whitespace?", &[Value::Char(' ')])
            .unwrap()
            .is_truthy());
    }

    #[test]
    fn comparisons() {
        assert!(call("char=?", &[Value::Char('a'), Value::Char('a')])
            .unwrap()
            .is_truthy());
        assert!(call("char<?", &[Value::Char('a'), Value::Char('b')])
            .unwrap()
            .is_truthy());
        assert!(call("char=?", &[Value::Int(1), Value::Char('a')]).is_err());
    }
}
