//! The primitive library.
//!
//! [`primitives`] returns every native procedure the base language's
//! initial environment provides: the generic (tag-dispatching) operations,
//! the `unsafe-*` type-specialized operations the optimizer targets
//! (paper §7.1), list/string/vector/char operations, I/O, and the phase-1
//! syntax-object operations macro transformers use.

mod arith;
mod chars;
mod io_prims;
mod lists;
mod misc;
mod strings;
mod syntax_ops;
mod unsafe_ops;
mod vectors;

use crate::value::Value;
use lagoon_syntax::Symbol;

pub use syntax_ops::{syntax_e, value_to_syntax};

/// Every primitive, as `(name, procedure)` pairs ready to install in an
/// environment.
pub fn primitives() -> Vec<(Symbol, Value)> {
    let mut out = Vec::new();
    arith::install(&mut out);
    lists::install(&mut out);
    strings::install(&mut out);
    chars::install(&mut out);
    vectors::install(&mut out);
    io_prims::install(&mut out);
    syntax_ops::install(&mut out);
    unsafe_ops::install(&mut out);
    misc::install(&mut out);
    out
}

pub(crate) fn def(
    out: &mut Vec<(Symbol, Value)>,
    name: &str,
    arity: crate::value::Arity,
    f: impl Fn(&[Value]) -> Result<Value, crate::error::RtError> + 'static,
) {
    out.push((
        Symbol::intern(name),
        crate::value::Native::value(name, arity, f),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_duplicate_primitives() {
        let prims = primitives();
        let mut seen = std::collections::HashSet::new();
        for (name, _) in &prims {
            assert!(seen.insert(*name), "duplicate primitive {name}");
        }
        assert!(
            prims.len() > 100,
            "expected a substantial primitive library"
        );
    }

    #[test]
    fn all_primitives_are_procedures() {
        for (name, v) in primitives() {
            assert!(v.is_procedure(), "{name} is not a procedure");
        }
    }
}
