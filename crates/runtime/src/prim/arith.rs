//! Generic arithmetic primitives (tag-dispatching).

use super::def;
use crate::error::RtError;
use crate::number;
use crate::value::{Arity, Unpacked, Value};
use std::cmp::Ordering;

fn fold_variadic(
    name: &'static str,
    identity: Value,
    f: fn(&Value, &Value) -> Result<Value, RtError>,
) -> impl Fn(&[Value]) -> Result<Value, RtError> {
    move |args| {
        if args.is_empty() {
            return Ok(identity.clone());
        }
        let mut acc = args[0].clone();
        if args.len() == 1 && (name == "-" || name == "/") {
            // unary negation / reciprocal; `0 - x` is wrong for flonum
            // negation at the zeros (`(- 0.0)` must be `-0.0`, but
            // `0 - 0.0` is `+0.0`), so negate floats by sign flip
            if name == "-" {
                if let Some(x) = acc.as_float() {
                    return Ok(Value::Float(-x));
                }
                if let Some((re, im)) = acc.as_complex() {
                    return Ok(Value::Complex(-re, -im));
                }
            }
            return f(&identity, &acc);
        }
        for arg in &args[1..] {
            acc = f(&acc, arg)?;
        }
        Ok(acc)
    }
}

fn chain_compare(
    name: &'static str,
    ok: fn(Ordering) -> bool,
) -> impl Fn(&[Value]) -> Result<Value, RtError> {
    move |args| {
        for w in args.windows(2) {
            if !ok(number::compare(name, &w[0], &w[1])?) {
                return Ok(Value::Bool(false));
            }
        }
        Ok(Value::Bool(true))
    }
}

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    def(
        out,
        "+",
        Arity::at_least(0),
        fold_variadic("+", Value::Int(0), number::add),
    );
    def(
        out,
        "-",
        Arity::at_least(1),
        fold_variadic("-", Value::Int(0), number::sub),
    );
    def(
        out,
        "*",
        Arity::at_least(0),
        fold_variadic("*", Value::Int(1), number::mul),
    );
    def(
        out,
        "/",
        Arity::at_least(1),
        fold_variadic("/", Value::Int(1), number::div),
    );

    def(
        out,
        "<",
        Arity::at_least(2),
        chain_compare("<", Ordering::is_lt),
    );
    def(
        out,
        "<=",
        Arity::at_least(2),
        chain_compare("<=", Ordering::is_le),
    );
    def(
        out,
        ">",
        Arity::at_least(2),
        chain_compare(">", Ordering::is_gt),
    );
    def(
        out,
        ">=",
        Arity::at_least(2),
        chain_compare(">=", Ordering::is_ge),
    );
    def(out, "=", Arity::at_least(2), |args| {
        for w in args.windows(2) {
            if !number::num_eq(&w[0], &w[1])? {
                return Ok(Value::Bool(false));
            }
        }
        Ok(Value::Bool(true))
    });

    def(out, "add1", Arity::exactly(1), |args| {
        number::add(&args[0], &Value::Int(1))
    });
    def(out, "sub1", Arity::exactly(1), |args| {
        number::sub(&args[0], &Value::Int(1))
    });
    def(out, "abs", Arity::exactly(1), |args| {
        if args[0].is_complex() {
            Err(RtError::type_error("abs: expected real"))
        } else {
            number::magnitude(&args[0])
        }
    });
    def(out, "magnitude", Arity::exactly(1), |args| {
        number::magnitude(&args[0])
    });
    def(out, "min", Arity::at_least(1), |args| {
        let mut best = args[0].clone();
        for v in &args[1..] {
            if number::compare("min", v, &best)?.is_lt() {
                best = v.clone();
            }
        }
        Ok(best)
    });
    def(out, "max", Arity::at_least(1), |args| {
        let mut best = args[0].clone();
        for v in &args[1..] {
            if number::compare("max", v, &best)?.is_gt() {
                best = v.clone();
            }
        }
        Ok(best)
    });

    def(out, "quotient", Arity::exactly(2), |args| {
        number::quotient(&args[0], &args[1])
    });
    def(out, "remainder", Arity::exactly(2), |args| {
        number::remainder(&args[0], &args[1])
    });
    def(out, "modulo", Arity::exactly(2), |args| {
        number::modulo(&args[0], &args[1])
    });

    def(out, "sqrt", Arity::exactly(1), |args| {
        number::sqrt(&args[0])
    });
    def(out, "expt", Arity::exactly(2), |args| {
        number::expt(&args[0], &args[1])
    });
    for op in ["sin", "cos", "tan", "asin", "acos", "log", "exp"] {
        def(out, op, Arity::exactly(1), move |args| {
            number::float_unary(op, &args[0])
        });
    }
    def(out, "atan", Arity::at_least(1), |args| match args {
        [v] => number::float_unary("atan", v),
        [y, x] => {
            let real = |v: &Value| match v.unpacked() {
                Unpacked::Int(n) => Ok(n as f64),
                Unpacked::Float(f) => Ok(f),
                _ => Err(RtError::type_error(format!("atan: expected real, got {v}"))),
            };
            Ok(Value::Float(real(y)?.atan2(real(x)?)))
        }
        _ => Err(RtError::arity("atan: expects 1 or 2 arguments")),
    });

    for op in ["floor", "ceiling", "round", "truncate"] {
        def(out, op, Arity::exactly(1), move |args| {
            number::round_family(op, &args[0])
        });
    }

    def(out, "exact->inexact", Arity::exactly(1), |args| {
        number::to_inexact(&args[0])
    });
    def(out, "exact", Arity::exactly(1), |args| {
        number::to_exact(&args[0])
    });
    def(out, "inexact->exact", Arity::exactly(1), |args| {
        number::to_exact(&args[0])
    });

    def(out, "zero?", Arity::exactly(1), |args| {
        Ok(Value::Bool(match args[0].unpacked() {
            Unpacked::Int(n) => n == 0,
            Unpacked::Float(x) => x == 0.0,
            Unpacked::Complex(re, im) => re == 0.0 && im == 0.0,
            _ => {
                return Err(RtError::type_error(format!(
                    "zero?: expected number, got {}",
                    args[0]
                )))
            }
        }))
    });
    def(out, "positive?", Arity::exactly(1), |args| {
        Ok(Value::Bool(
            number::compare("positive?", &args[0], &Value::Int(0))?.is_gt(),
        ))
    });
    def(out, "negative?", Arity::exactly(1), |args| {
        Ok(Value::Bool(
            number::compare("negative?", &args[0], &Value::Int(0))?.is_lt(),
        ))
    });
    def(out, "even?", Arity::exactly(1), |args| {
        match args[0].as_int() {
            Some(n) => Ok(Value::Bool(n % 2 == 0)),
            None => Err(RtError::type_error(format!(
                "even?: expected integer, got {}",
                args[0]
            ))),
        }
    });
    def(out, "odd?", Arity::exactly(1), |args| {
        match args[0].as_int() {
            Some(n) => Ok(Value::Bool(n % 2 != 0)),
            None => Err(RtError::type_error(format!(
                "odd?: expected integer, got {}",
                args[0]
            ))),
        }
    });

    def(out, "number?", Arity::exactly(1), |args| {
        let v = &args[0];
        Ok(Value::Bool(v.is_int() || v.is_float() || v.is_complex()))
    });
    def(out, "integer?", Arity::exactly(1), |args| {
        Ok(Value::Bool(match args[0].unpacked() {
            Unpacked::Int(_) => true,
            Unpacked::Float(x) => x.fract() == 0.0,
            _ => false,
        }))
    });
    def(out, "exact-integer?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_int()))
    });
    def(out, "flonum?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_float()))
    });
    def(out, "real?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_int() || args[0].is_float()))
    });
    def(out, "exact?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_int()))
    });
    def(out, "inexact?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].is_float() || args[0].is_complex()))
    });

    def(out, "make-rectangular", Arity::exactly(2), |args| {
        let real = |v: &Value| match v.unpacked() {
            Unpacked::Int(n) => Ok(n as f64),
            Unpacked::Float(x) => Ok(x),
            _ => Err(RtError::type_error(format!("make-rectangular: {v}"))),
        };
        Ok(Value::Complex(real(&args[0])?, real(&args[1])?))
    });
    def(out, "real-part", Arity::exactly(1), |args| {
        match args[0].unpacked() {
            Unpacked::Complex(re, _) => Ok(Value::Float(re)),
            Unpacked::Int(_) | Unpacked::Float(_) => Ok(args[0].clone()),
            _ => Err(RtError::type_error(format!(
                "real-part: expected number, got {}",
                args[0]
            ))),
        }
    });
    def(out, "imag-part", Arity::exactly(1), |args| {
        match args[0].unpacked() {
            Unpacked::Complex(_, im) => Ok(Value::Float(im)),
            Unpacked::Int(_) => Ok(Value::Int(0)),
            Unpacked::Float(_) => Ok(Value::Float(0.0)),
            _ => Err(RtError::type_error(format!(
                "imag-part: expected number, got {}",
                args[0]
            ))),
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Result<Value, crate::error::RtError> {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap_or_else(|| panic!("no primitive {name}"));
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    #[test]
    fn variadic_addition() {
        assert_eq!(call("+", &[]).unwrap().as_int(), Some(0));
        assert_eq!(call("+", &[Value::Int(5)]).unwrap().as_int(), Some(5));
        assert_eq!(
            call("+", &[Value::Int(1), Value::Int(2), Value::Int(3)])
                .unwrap()
                .as_int(),
            Some(6)
        );
    }

    #[test]
    fn unary_minus_negates() {
        assert_eq!(call("-", &[Value::Int(5)]).unwrap().as_int(), Some(-5));
        assert_eq!(call("/", &[Value::Int(4)]).unwrap().as_float(), Some(0.25));
    }

    #[test]
    fn chained_comparisons() {
        let t = call("<", &[Value::Int(1), Value::Int(2), Value::Int(3)]).unwrap();
        assert!(t.is_truthy());
        let f = call("<", &[Value::Int(1), Value::Int(3), Value::Int(2)]).unwrap();
        assert!(!f.is_truthy());
    }

    #[test]
    fn predicates() {
        assert!(call("even?", &[Value::Int(4)]).unwrap().is_truthy());
        assert!(!call("odd?", &[Value::Int(4)]).unwrap().is_truthy());
        assert!(call("zero?", &[Value::Float(0.0)]).unwrap().is_truthy());
        assert!(call("flonum?", &[Value::Float(1.0)]).unwrap().is_truthy());
        assert!(!call("flonum?", &[Value::Int(1)]).unwrap().is_truthy());
        assert!(call("integer?", &[Value::Float(2.0)]).unwrap().is_truthy());
        assert!(call("exact-integer?", &[Value::Int(2)])
            .unwrap()
            .is_truthy());
        assert!(!call("exact-integer?", &[Value::Float(2.0)])
            .unwrap()
            .is_truthy());
    }

    #[test]
    fn complex_constructors() {
        let c = call("make-rectangular", &[Value::Float(1.0), Value::Float(2.0)]).unwrap();
        assert_eq!(c.as_complex(), Some((1.0, 2.0)));
        assert_eq!(
            call("real-part", std::slice::from_ref(&c))
                .unwrap()
                .as_float(),
            Some(1.0)
        );
        assert_eq!(call("imag-part", &[c]).unwrap().as_float(), Some(2.0));
    }

    #[test]
    fn min_max() {
        assert_eq!(
            call("min", &[Value::Int(3), Value::Int(1), Value::Int(2)])
                .unwrap()
                .as_int(),
            Some(1)
        );
        assert_eq!(
            call("max", &[Value::Int(3), Value::Float(4.5)])
                .unwrap()
                .as_float(),
            Some(4.5)
        );
    }
}
