//! Phase-1 primitives over syntax objects.
//!
//! Macro transformers are ordinary Lagoon procedures run at compile time;
//! these primitives give them the paper's syntax-object API: `syntax-e`,
//! `syntax->datum`, `datum->syntax`, `syntax->list`, and the
//! `syntax-property-put`/`syntax-property-get` pair used to attach
//! out-of-band information such as type annotations (paper §§2.2, 3.1).
//!
//! `free-identifier=?` and `local-expand` need the expander's binding
//! tables, so they are installed by `lagoon-core` instead.

use super::def;
use crate::error::RtError;
use crate::value::{Arity, Value};
use lagoon_syntax::{PropValue, Span, SynData, Syntax};

fn expect_syntax(name: &str, v: &Value) -> Result<Syntax, RtError> {
    match v.as_syntax() {
        Some(s) => Ok(s.clone()),
        None => Err(RtError::type_error(format!(
            "{name}: expected syntax, got {}",
            v.write_string()
        ))),
    }
}

fn expect_identifier(name: &str, v: &Value) -> Result<Syntax, RtError> {
    let s = expect_syntax(name, v)?;
    if s.is_identifier() {
        Ok(s)
    } else {
        Err(RtError::type_error(format!(
            "{name}: expected identifier, got {s}"
        )))
    }
}

/// Converts a phase-1 value to syntax, preserving embedded syntax objects
/// (the semantics of `datum->syntax`).
pub fn value_to_syntax(ctx: &Syntax, v: &Value) -> Result<Syntax, RtError> {
    if let Some(s) = v.as_syntax() {
        return Ok(s.clone());
    }
    if v.is_nil() {
        return Ok(ctx
            .with_data(SynData::List(Vec::new()))
            .with_span(Span::synthetic()));
    }
    if v.as_pair().is_some() {
        let mut items = Vec::new();
        let mut cur = v.clone();
        loop {
            if cur.is_nil() {
                return Ok(ctx
                    .with_data(SynData::List(items))
                    .with_span(Span::synthetic()));
            }
            if let Some(p) = cur.as_pair() {
                items.push(value_to_syntax(ctx, &p.0)?);
                let next = p.1.clone();
                cur = next;
            } else {
                let tail = value_to_syntax(ctx, &cur)?;
                return Ok(ctx
                    .with_data(SynData::Improper(items, Box::new(tail)))
                    .with_span(Span::synthetic()));
            }
        }
    }
    if let Some(items) = v.as_vector() {
        let items = items
            .borrow()
            .iter()
            .map(|x| value_to_syntax(ctx, x))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(ctx
            .with_data(SynData::Vector(items))
            .with_span(Span::synthetic()));
    }
    let d = v.to_datum().ok_or_else(|| {
        RtError::type_error(format!(
            "datum->syntax: cannot convert {} to syntax",
            v.write_string()
        ))
    })?;
    Ok(Syntax::from_datum(&d, Span::synthetic(), ctx.scopes()))
}

/// One level of `syntax-e`: compound syntax becomes a list/vector of
/// syntax values; atoms become plain values.
pub fn syntax_e(s: &Syntax) -> Value {
    match s.e() {
        SynData::Atom(d) => Value::from_datum(d),
        SynData::List(items) => {
            Value::list(items.iter().cloned().map(Value::Syntax).collect::<Vec<_>>())
        }
        SynData::Improper(items, tail) => {
            let mut out = Value::Syntax((**tail).clone());
            for item in items.iter().rev() {
                out = Value::cons(Value::Syntax(item.clone()), out);
            }
            out
        }
        SynData::Vector(items) => Value::Vector(std::rc::Rc::new(std::cell::RefCell::new(
            items.iter().cloned().map(Value::Syntax).collect(),
        ))),
    }
}

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    def(out, "syntax?", Arity::exactly(1), |args| {
        Ok(Value::Bool(args[0].as_syntax().is_some()))
    });
    def(out, "identifier?", Arity::exactly(1), |args| {
        Ok(Value::Bool(
            args[0].as_syntax().is_some_and(Syntax::is_identifier),
        ))
    });
    def(out, "syntax-e", Arity::exactly(1), |args| {
        Ok(syntax_e(&expect_syntax("syntax-e", &args[0])?))
    });
    def(out, "syntax->datum", Arity::exactly(1), |args| {
        Ok(Value::from_datum(
            &expect_syntax("syntax->datum", &args[0])?.to_datum(),
        ))
    });
    def(out, "syntax->list", Arity::exactly(1), |args| {
        let s = expect_syntax("syntax->list", &args[0])?;
        match s.as_list() {
            Some(items) => Ok(Value::list(
                items.iter().cloned().map(Value::Syntax).collect::<Vec<_>>(),
            )),
            None => Ok(Value::Bool(false)),
        }
    });
    def(out, "datum->syntax", Arity::exactly(2), |args| {
        let ctx = expect_syntax("datum->syntax", &args[0])?;
        Ok(Value::Syntax(value_to_syntax(&ctx, &args[1])?))
    });
    def(out, "syntax-property-put", Arity::exactly(3), |args| {
        let s = expect_syntax("syntax-property-put", &args[0])?;
        let key = match args[1].as_symbol() {
            Some(k) => k,
            None => {
                return Err(RtError::type_error(format!(
                    "syntax-property-put: expected symbol key, got {}",
                    args[1].write_string()
                )))
            }
        };
        let prop = match args[2].as_syntax() {
            Some(ps) => PropValue::Syntax(ps.clone()),
            None => PropValue::Datum(args[2].to_datum().ok_or_else(|| {
                RtError::type_error(format!(
                    "syntax-property-put: value {} has no datum form",
                    args[2].write_string()
                ))
            })?),
        };
        Ok(Value::Syntax(s.with_property(key, prop)))
    });
    def(out, "syntax-property-get", Arity::exactly(2), |args| {
        let s = expect_syntax("syntax-property-get", &args[0])?;
        let key = match args[1].as_symbol() {
            Some(k) => k,
            None => {
                return Err(RtError::type_error(format!(
                    "syntax-property-get: expected symbol key, got {}",
                    args[1].write_string()
                )))
            }
        };
        Ok(match s.property(key) {
            Some(PropValue::Syntax(ps)) => Value::Syntax(ps.clone()),
            Some(PropValue::Datum(d)) => Value::from_datum(d),
            None => Value::Bool(false),
        })
    });
    def(out, "bound-identifier=?", Arity::exactly(2), |args| {
        // Same symbol and same scope set: would bind each other.
        let a = expect_identifier("bound-identifier=?", &args[0])?;
        let b = expect_identifier("bound-identifier=?", &args[1])?;
        Ok(Value::Bool(a.sym() == b.sym() && a.scopes() == b.scopes()))
    });
    def(out, "syntax-line", Arity::exactly(1), |args| {
        let s = expect_syntax("syntax-line", &args[0])?;
        if s.span().is_synthetic() {
            Ok(Value::Bool(false))
        } else {
            Ok(Value::Int(s.span().line as i64))
        }
    });
    def(out, "syntax-source", Arity::exactly(1), |args| {
        let s = expect_syntax("syntax-source", &args[0])?;
        Ok(Value::Symbol(s.span().source))
    });
    def(out, "raise-syntax-error", Arity::at_least(2), |args| {
        let who = args[0].to_string();
        let msg = args[1].to_string();
        let mut err = RtError::user(format!("{who}: {msg}"));
        if let Some(s) = args.get(2).and_then(Value::as_syntax) {
            err = RtError::user(format!("{who}: {msg} in: {s}")).with_span(s.span());
        }
        Err(err)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagoon_syntax::{read_syntax, Symbol};

    fn call(name: &str, args: &[Value]) -> Result<Value, RtError> {
        let prims = crate::prim::primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args)
    }

    fn stx(src: &str) -> Value {
        Value::Syntax(read_syntax(src, "<t>").unwrap())
    }

    #[test]
    fn syntax_e_unwraps_one_level() {
        let v = call("syntax-e", &[stx("(a b)")]).unwrap();
        let items = v.list_to_vec().unwrap();
        assert_eq!(items.len(), 2);
        assert!(items[0].as_syntax().is_some());
        // atoms unwrap fully
        let v = call("syntax-e", &[stx("42")]).unwrap();
        assert_eq!(v.as_int(), Some(42));
    }

    #[test]
    fn syntax_to_list() {
        let v = call("syntax->list", &[stx("(a b c)")]).unwrap();
        assert_eq!(v.list_to_vec().unwrap().len(), 3);
        let not_list = call("syntax->list", &[stx("abc")]).unwrap();
        assert!(!not_list.is_truthy());
    }

    #[test]
    fn datum_to_syntax_preserves_embedded_syntax() {
        let ctx = read_syntax("ctx", "<t>").unwrap();
        let inner = read_syntax("inner", "<t>").unwrap();
        let v = Value::list(vec![
            Value::Symbol(Symbol::from("f")),
            Value::Syntax(inner.clone()),
        ]);
        let s = value_to_syntax(&ctx, &v).unwrap();
        let items = s.as_list().unwrap();
        assert!(items[1].ptr_eq(&inner));
    }

    #[test]
    fn property_round_trip() {
        let key = Value::Symbol(Symbol::from("type-annotation"));
        let annotated = call(
            "syntax-property-put",
            &[stx("x"), key.clone(), stx("Integer")],
        )
        .unwrap();
        let got = call("syntax-property-get", &[annotated, key.clone()]).unwrap();
        match got.as_syntax() {
            Some(s) => assert_eq!(s.sym(), Some(Symbol::from("Integer"))),
            None => panic!("expected syntax property, got {got}"),
        }
        let missing = call("syntax-property-get", &[stx("x"), key]).unwrap();
        assert!(!missing.is_truthy());
    }

    #[test]
    fn raise_syntax_error_raises() {
        let e = call(
            "raise-syntax-error",
            &[
                Value::Symbol(Symbol::from("only-λ")),
                Value::string("not λ"),
            ],
        )
        .unwrap_err();
        assert!(e.message.contains("not λ"));
    }

    #[test]
    fn syntax_source_info() {
        let v = call("syntax-line", &[stx("(a)")]).unwrap();
        assert_eq!(v.as_int(), Some(1));
    }
}
