//! Unsafe type-specialized primitives — the optimizer's target.
//!
//! Paper §7.1: “Racket exposes unsafe type-specialized primitives. For
//! instance, the `unsafe-fl+` primitive adds two floating-point numbers,
//! but has undefined behavior when applied to anything else.”
//!
//! These operations skip the generic numeric tower entirely: no promotion,
//! no overflow checks, no dispatch beyond a single-pattern extraction.
//! Lagoon (being memory-safe Rust) cannot offer true undefined behaviour;
//! misapplication panics in debug builds and produces an arbitrary value
//! (0.0 / the argument itself) in release builds — never memory unsafety.
//! The *type-driven optimizer is only permitted to emit these after
//! typechecking proves the operand types*, so a misapplication indicates a
//! bug in the optimizer, not in user code.

use super::def;
use crate::error::RtError;
use crate::value::{Arity, Value};

#[inline(always)]
fn fl(v: &Value) -> f64 {
    match v.as_float() {
        Some(x) => x,
        None => {
            debug_assert!(false, "unsafe-fl op applied to {}", v.write_string());
            0.0
        }
    }
}

#[inline(always)]
fn fx(v: &Value) -> i64 {
    match v.as_int() {
        Some(n) => n,
        None => {
            debug_assert!(false, "unsafe-fx op applied to {}", v.write_string());
            0
        }
    }
}

#[inline(always)]
fn cpx(v: &Value) -> (f64, f64) {
    match v.as_complex() {
        Some(z) => z,
        None => {
            debug_assert!(false, "unsafe-fc op applied to {}", v.write_string());
            (0.0, 0.0)
        }
    }
}

pub(super) fn install(out: &mut Vec<(lagoon_syntax::Symbol, Value)>) {
    // Floating-point specializations.
    def(out, "unsafe-fl+", Arity::exactly(2), |a| {
        Ok(Value::Float(fl(&a[0]) + fl(&a[1])))
    });
    def(out, "unsafe-fl-", Arity::exactly(2), |a| {
        Ok(Value::Float(fl(&a[0]) - fl(&a[1])))
    });
    def(out, "unsafe-fl*", Arity::exactly(2), |a| {
        Ok(Value::Float(fl(&a[0]) * fl(&a[1])))
    });
    def(out, "unsafe-fl/", Arity::exactly(2), |a| {
        Ok(Value::Float(fl(&a[0]) / fl(&a[1])))
    });
    def(out, "unsafe-fl<", Arity::exactly(2), |a| {
        Ok(Value::Bool(fl(&a[0]) < fl(&a[1])))
    });
    def(out, "unsafe-fl<=", Arity::exactly(2), |a| {
        Ok(Value::Bool(fl(&a[0]) <= fl(&a[1])))
    });
    def(out, "unsafe-fl>", Arity::exactly(2), |a| {
        Ok(Value::Bool(fl(&a[0]) > fl(&a[1])))
    });
    def(out, "unsafe-fl>=", Arity::exactly(2), |a| {
        Ok(Value::Bool(fl(&a[0]) >= fl(&a[1])))
    });
    def(out, "unsafe-fl=", Arity::exactly(2), |a| {
        Ok(Value::Bool(fl(&a[0]) == fl(&a[1])))
    });
    def(out, "unsafe-flabs", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).abs()))
    });
    def(out, "unsafe-flsqrt", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).sqrt()))
    });
    def(out, "unsafe-flmin", Arity::exactly(2), |a| {
        Ok(Value::Float(fl(&a[0]).min(fl(&a[1]))))
    });
    def(out, "unsafe-flmax", Arity::exactly(2), |a| {
        Ok(Value::Float(fl(&a[0]).max(fl(&a[1]))))
    });
    def(out, "unsafe-flsin", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).sin()))
    });
    def(out, "unsafe-flcos", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).cos()))
    });
    def(out, "unsafe-flatan", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).atan()))
    });
    def(out, "unsafe-fllog", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).ln()))
    });
    def(out, "unsafe-flexp", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).exp()))
    });
    def(out, "unsafe-flfloor", Arity::exactly(1), |a| {
        Ok(Value::Float(fl(&a[0]).floor()))
    });

    // Fixnum specializations (unchecked, wrapping).
    def(out, "unsafe-fx+", Arity::exactly(2), |a| {
        Ok(Value::Int(fx(&a[0]).wrapping_add(fx(&a[1]))))
    });
    def(out, "unsafe-fx-", Arity::exactly(2), |a| {
        Ok(Value::Int(fx(&a[0]).wrapping_sub(fx(&a[1]))))
    });
    def(out, "unsafe-fx*", Arity::exactly(2), |a| {
        Ok(Value::Int(fx(&a[0]).wrapping_mul(fx(&a[1]))))
    });
    def(out, "unsafe-fxquotient", Arity::exactly(2), |a| {
        let d = fx(&a[1]);
        Ok(Value::Int(if d == 0 {
            0
        } else {
            fx(&a[0]).wrapping_div(d)
        }))
    });
    def(out, "unsafe-fxremainder", Arity::exactly(2), |a| {
        let d = fx(&a[1]);
        Ok(Value::Int(if d == 0 {
            0
        } else {
            fx(&a[0]).wrapping_rem(d)
        }))
    });
    def(out, "unsafe-fx<", Arity::exactly(2), |a| {
        Ok(Value::Bool(fx(&a[0]) < fx(&a[1])))
    });
    def(out, "unsafe-fx<=", Arity::exactly(2), |a| {
        Ok(Value::Bool(fx(&a[0]) <= fx(&a[1])))
    });
    def(out, "unsafe-fx>", Arity::exactly(2), |a| {
        Ok(Value::Bool(fx(&a[0]) > fx(&a[1])))
    });
    def(out, "unsafe-fx>=", Arity::exactly(2), |a| {
        Ok(Value::Bool(fx(&a[0]) >= fx(&a[1])))
    });
    def(out, "unsafe-fx=", Arity::exactly(2), |a| {
        Ok(Value::Bool(fx(&a[0]) == fx(&a[1])))
    });

    // Float-complex specializations: the "arity-raised" representation the
    // optimizer targets for complex arithmetic (paper §7.2). Operating on
    // both components at once avoids the generic tower's dispatch.
    def(out, "unsafe-fc+", Arity::exactly(2), |a| {
        let (xr, xi) = cpx(&a[0]);
        let (yr, yi) = cpx(&a[1]);
        Ok(Value::Complex(xr + yr, xi + yi))
    });
    def(out, "unsafe-fc-", Arity::exactly(2), |a| {
        let (xr, xi) = cpx(&a[0]);
        let (yr, yi) = cpx(&a[1]);
        Ok(Value::Complex(xr - yr, xi - yi))
    });
    def(out, "unsafe-fc*", Arity::exactly(2), |a| {
        let (xr, xi) = cpx(&a[0]);
        let (yr, yi) = cpx(&a[1]);
        Ok(Value::Complex(xr * yr - xi * yi, xr * yi + xi * yr))
    });
    def(out, "unsafe-fc/", Arity::exactly(2), |a| {
        let (xr, xi) = cpx(&a[0]);
        let (yr, yi) = cpx(&a[1]);
        let d = yr * yr + yi * yi;
        Ok(Value::Complex(
            (xr * yr + xi * yi) / d,
            (xi * yr - xr * yi) / d,
        ))
    });
    def(out, "unsafe-fcmagnitude", Arity::exactly(1), |a| {
        let (re, im) = cpx(&a[0]);
        Ok(Value::Float(re.hypot(im)))
    });

    // Pair / vector specializations: tag-check elimination (paper §7.2
    // "eliminates tag-checking made redundant by the typechecker").
    def(out, "unsafe-car", Arity::exactly(1), |a| {
        match a[0].as_pair() {
            Some(p) => Ok(p.0.clone()),
            None => {
                debug_assert!(false, "unsafe-car applied to {}", a[0].write_string());
                Ok(a[0].clone())
            }
        }
    });
    def(out, "unsafe-cdr", Arity::exactly(1), |a| {
        match a[0].as_pair() {
            Some(p) => Ok(p.1.clone()),
            None => {
                debug_assert!(false, "unsafe-cdr applied to {}", a[0].write_string());
                Ok(a[0].clone())
            }
        }
    });
    def(out, "unsafe-vector-ref", Arity::exactly(2), |a| {
        match (a[0].as_vector(), a[1].as_int()) {
            (Some(v), Some(i)) => {
                let v = v.borrow();
                match v.get(i as usize) {
                    Some(x) => Ok(x.clone()),
                    None => {
                        debug_assert!(false, "unsafe-vector-ref out of range");
                        Ok(Value::Void)
                    }
                }
            }
            _ => {
                debug_assert!(false, "unsafe-vector-ref misapplied");
                Ok(Value::Void)
            }
        }
    });
    def(out, "unsafe-vector-set!", Arity::exactly(3), |a| {
        match (a[0].as_vector(), a[1].as_int()) {
            (Some(v), Some(i)) => {
                let mut v = v.borrow_mut();
                let i = i as usize;
                if i < v.len() {
                    v[i] = a[2].clone();
                } else {
                    debug_assert!(false, "unsafe-vector-set! out of range");
                }
                Ok(Value::Void)
            }
            _ => {
                debug_assert!(false, "unsafe-vector-set! misapplied");
                Ok(Value::Void)
            }
        }
    });
    def(
        out,
        "unsafe-vector-length",
        Arity::exactly(1),
        |a| match a[0].as_vector() {
            Some(v) => Ok(Value::Int(v.borrow().len() as i64)),
            None => {
                debug_assert!(false, "unsafe-vector-length misapplied");
                Ok(Value::Int(0))
            }
        },
    );

    // Coercions emitted by the optimizer when it has proved one side is
    // already a float / when mixing proved-int with proved-float operands.
    def(out, "unsafe-fx->fl", Arity::exactly(1), |a| {
        Ok(Value::Float(fx(&a[0]) as f64))
    });

    // A checked escape hatch used by tests to confirm the unsafe ops are
    // reachable from hosted code.
    def(out, "unsafe-ops-available?", Arity::exactly(0), |_| {
        Ok::<_, RtError>(Value::Bool(true))
    });
}

#[cfg(test)]
mod tests {
    use crate::prim::primitives;
    use crate::value::Value;
    use lagoon_syntax::Symbol;

    fn call(name: &str, args: &[Value]) -> Value {
        let prims = primitives();
        let (_, v) = prims
            .iter()
            .find(|(n, _)| *n == Symbol::from(name))
            .unwrap();
        let n = v.as_native().expect("primitive is native");
        (n.f)(args).unwrap()
    }

    #[test]
    fn fl_ops() {
        assert_eq!(
            call("unsafe-fl+", &[Value::Float(1.5), Value::Float(2.0)]).as_float(),
            Some(3.5)
        );
        assert_eq!(
            call("unsafe-fl*", &[Value::Float(2.0), Value::Float(4.0)]).as_float(),
            Some(8.0)
        );
        assert!(call("unsafe-fl<", &[Value::Float(1.0), Value::Float(2.0)]).is_truthy());
        assert_eq!(
            call("unsafe-flsqrt", &[Value::Float(9.0)]).as_float(),
            Some(3.0)
        );
    }

    #[test]
    fn fx_ops_wrap() {
        assert_eq!(
            call("unsafe-fx+", &[Value::Int(i64::MAX), Value::Int(1)]).as_int(),
            Some(i64::MIN)
        );
    }

    #[test]
    fn fc_ops() {
        let z = call(
            "unsafe-fc*",
            &[Value::Complex(2.0, 2.0), Value::Complex(2.0, 2.0)],
        );
        assert_eq!(z.as_complex(), Some((0.0, 8.0)));
        assert_eq!(
            call("unsafe-fcmagnitude", &[Value::Complex(3.0, 4.0)]).as_float(),
            Some(5.0)
        );
    }

    #[test]
    fn structure_ops() {
        let p = Value::cons(Value::Int(1), Value::Int(2));
        assert_eq!(
            call("unsafe-car", std::slice::from_ref(&p)).as_int(),
            Some(1)
        );
        assert_eq!(call("unsafe-cdr", &[p]).as_int(), Some(2));
        let v = call(
            "unsafe-vector-ref",
            &[Value::vector(vec![Value::Int(9)]), Value::Int(0)],
        );
        assert_eq!(v.as_int(), Some(9));
    }

    #[test]
    fn coercion() {
        assert_eq!(
            call("unsafe-fx->fl", &[Value::Int(3)]).as_float(),
            Some(3.0)
        );
    }
}
