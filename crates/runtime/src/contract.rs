//! Run-time contracts for typed/untyped interoperation.
//!
//! The typed sister language compiles each type that crosses a module
//! boundary into a [`Contract`] (paper §6, `type->contract`). Flat
//! contracts are first-order predicates checked immediately; function
//! contracts wrap the procedure in a [`crate::value::Contracted`] proxy
//! whose checks fire at every application, blaming the appropriate
//! party.

use crate::error::RtError;
use crate::value::{Contracted, Value};
use lagoon_syntax::Symbol;
use std::fmt;
use std::rc::Rc;

/// A contract compiled from a type.
#[derive(Clone, Debug, PartialEq)]
pub enum Contract {
    /// Accepts anything.
    Any,
    /// Exact integer.
    Integer,
    /// Inexact real.
    Float,
    /// Any real or complex number.
    Number,
    /// Float-complex number.
    FloatComplex,
    /// Boolean.
    Boolean,
    /// String.
    Str,
    /// Character.
    Char,
    /// Symbol.
    Sym,
    /// The void value.
    Void,
    /// The empty list.
    Null,
    /// A proper list whose elements all satisfy the inner contract.
    ListOf(Box<Contract>),
    /// A pair whose halves satisfy the inner contracts.
    PairOf(Box<Contract>, Box<Contract>),
    /// A vector whose elements all satisfy the inner contract.
    VectorOf(Box<Contract>),
    /// A function contract: domain contracts and a range contract.
    Function(Vec<Contract>, Box<Contract>),
    /// A union: satisfied if any branch is (all branches must be flat).
    Union(Vec<Contract>),
}

impl Contract {
    /// A contract is *flat* if it can be fully checked first-order, with no
    /// wrapping.
    pub fn is_flat(&self) -> bool {
        match self {
            Contract::Function(_, _) => false,
            Contract::ListOf(c) | Contract::VectorOf(c) => c.is_flat(),
            Contract::PairOf(a, b) => a.is_flat() && b.is_flat(),
            Contract::Union(cs) => cs.iter().all(Contract::is_flat),
            _ => true,
        }
    }

    /// First-order check. For a flat contract this is the complete check;
    /// for a function contract it only verifies "is a procedure of the
    /// right arity-shape" (the rest is checked lazily by the proxy).
    pub fn check_first_order(&self, v: &Value) -> bool {
        match self {
            Contract::Any => true,
            Contract::Integer => v.is_int(),
            Contract::Float => v.is_float(),
            Contract::Number => v.is_int() || v.is_float() || v.is_complex(),
            Contract::FloatComplex => v.is_complex(),
            Contract::Boolean => v.as_bool().is_some(),
            Contract::Str => v.is_string(),
            Contract::Char => v.as_char().is_some(),
            Contract::Sym => v.as_symbol().is_some(),
            Contract::Void => v.is_void(),
            Contract::Null => v.is_nil(),
            Contract::ListOf(inner) => match v.list_to_vec() {
                Some(items) => items.iter().all(|x| inner.check_first_order(x)),
                None => false,
            },
            Contract::PairOf(a, b) => match v.as_pair() {
                Some(p) => a.check_first_order(&p.0) && b.check_first_order(&p.1),
                None => false,
            },
            Contract::VectorOf(inner) => match v.as_vector() {
                Some(items) => items.borrow().iter().all(|x| inner.check_first_order(x)),
                None => false,
            },
            Contract::Function(_, _) => v.is_procedure(),
            Contract::Union(cs) => cs.iter().any(|c| c.check_first_order(v)),
        }
    }
}

impl fmt::Display for Contract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Contract::Any => f.write_str("any/c"),
            Contract::Integer => f.write_str("integer?"),
            Contract::Float => f.write_str("flonum?"),
            Contract::Number => f.write_str("number?"),
            Contract::FloatComplex => f.write_str("float-complex?"),
            Contract::Boolean => f.write_str("boolean?"),
            Contract::Str => f.write_str("string?"),
            Contract::Char => f.write_str("char?"),
            Contract::Sym => f.write_str("symbol?"),
            Contract::Void => f.write_str("void?"),
            Contract::Null => f.write_str("null?"),
            Contract::ListOf(c) => write!(f, "(listof {c})"),
            Contract::PairOf(a, b) => write!(f, "(cons/c {a} {b})"),
            Contract::VectorOf(c) => write!(f, "(vectorof {c})"),
            Contract::Function(doms, rng) => {
                f.write_str("(->")?;
                for d in doms {
                    write!(f, " {d}")?;
                }
                write!(f, " {rng})")
            }
            Contract::Union(cs) => {
                f.write_str("(or/c")?;
                for c in cs {
                    write!(f, " {c}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Applies `contract` to `value` at a module boundary.
///
/// Flat contracts are checked immediately (blaming `positive`, the party
/// that promised the value has this shape). Function contracts wrap the
/// value in a [`Contracted`] proxy; the engine checks the domain and range
/// at each call, blaming `negative` for bad arguments and `positive` for a
/// bad result — paper §6.1's `(contract C v 'module 'typed-module)`.
///
/// # Errors
///
/// Returns a contract violation if a flat check fails or a function
/// contract is applied to a non-procedure.
pub fn apply_contract(
    value: Value,
    contract: &Contract,
    positive: Symbol,
    negative: Symbol,
) -> Result<Value, RtError> {
    match contract {
        Contract::Function(_, _) => {
            if !value.is_procedure() {
                return Err(RtError::contract(
                    positive,
                    format!("promised {contract}, produced {}", value.write_string()),
                ));
            }
            Ok(Value::Contracted(Rc::new(Contracted {
                inner: value,
                contract: contract.clone(),
                positive,
                negative,
            })))
        }
        flat => {
            lagoon_diag::count("contract-flat-checks", positive, 1);
            if flat.check_first_order(&value) {
                Ok(value)
            } else {
                Err(RtError::contract(
                    positive,
                    format!("promised {contract}, produced {}", value.write_string()),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos() -> Symbol {
        Symbol::from("server")
    }
    fn neg() -> Symbol {
        Symbol::from("client")
    }

    #[test]
    fn flat_checks() {
        assert!(Contract::Integer.check_first_order(&Value::Int(3)));
        assert!(!Contract::Integer.check_first_order(&Value::Float(3.0)));
        assert!(Contract::Number.check_first_order(&Value::Complex(1.0, 2.0)));
        assert!(Contract::Str.check_first_order(&Value::string("x")));
        assert!(Contract::Any.check_first_order(&Value::Void));
    }

    #[test]
    fn listof_checks_elements() {
        let c = Contract::ListOf(Box::new(Contract::Integer));
        assert!(c.check_first_order(&Value::list(vec![Value::Int(1), Value::Int(2)])));
        assert!(c.check_first_order(&Value::Nil));
        assert!(!c.check_first_order(&Value::list(vec![Value::Int(1), Value::string("x")])));
        assert!(!c.check_first_order(&Value::cons(Value::Int(1), Value::Int(2))));
    }

    #[test]
    fn union_checks_any_branch() {
        let c = Contract::Union(vec![Contract::Integer, Contract::Str]);
        assert!(c.check_first_order(&Value::Int(1)));
        assert!(c.check_first_order(&Value::string("s")));
        assert!(!c.check_first_order(&Value::Bool(true)));
    }

    #[test]
    fn flatness() {
        assert!(Contract::Integer.is_flat());
        assert!(Contract::ListOf(Box::new(Contract::Integer)).is_flat());
        let f = Contract::Function(vec![Contract::Integer], Box::new(Contract::Integer));
        assert!(!f.is_flat());
    }

    #[test]
    fn apply_flat_contract_passes_or_blames_positive() {
        let ok = apply_contract(Value::Int(1), &Contract::Integer, pos(), neg()).unwrap();
        assert_eq!(ok.as_int(), Some(1));
        let err =
            apply_contract(Value::string("no"), &Contract::Integer, pos(), neg()).unwrap_err();
        match err.kind {
            crate::error::Kind::Contract { blame } => assert_eq!(blame, pos()),
            _ => panic!("expected contract violation"),
        }
    }

    #[test]
    fn apply_function_contract_wraps() {
        use crate::value::{Arity, Native};
        let f = Native::value("inc", Arity::exactly(1), |args| {
            crate::number::add(&args[0], &Value::Int(1))
        });
        let c = Contract::Function(vec![Contract::Integer], Box::new(Contract::Integer));
        let wrapped = apply_contract(f, &c, pos(), neg()).unwrap();
        assert!(wrapped.as_contracted().is_some());
        // non-procedure under a function contract blames positive
        let err = apply_contract(Value::Int(3), &c, pos(), neg()).unwrap_err();
        assert!(matches!(err.kind, crate::error::Kind::Contract { .. }));
    }

    #[test]
    fn display_forms() {
        let c = Contract::Function(
            vec![Contract::Integer, Contract::Float],
            Box::new(Contract::ListOf(Box::new(Contract::Str))),
        );
        assert_eq!(c.to_string(), "(-> integer? flonum? (listof string?))");
    }
}
