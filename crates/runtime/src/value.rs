//! Runtime values.
//!
//! [`Value`] is the uniform, tagged representation of every Lagoon runtime
//! value. Generic primitives dispatch on the tag (and that dispatch is
//! precisely the cost the paper's type-driven optimizer removes by
//! rewriting to `unsafe-*` operations).
//!
//! Procedures come in three flavours:
//!
//! * [`Closure`] — compiled Lagoon code (the code/env payloads are owned by
//!   the VM and stored here as `Rc<dyn Any>`),
//! * [`Native`] — a Rust function exposed as a primitive,
//! * [`Contracted`] — a procedure wrapped in a higher-order contract at a
//!   typed/untyped module boundary (paper §6).
//!
//! Syntax objects are themselves values ([`Value::Syntax`]) because macro
//! transformers — phase-1 Lagoon procedures — consume and produce them.

use crate::error::RtError;
use lagoon_syntax::{Datum, Symbol, Syntax};
use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// How many arguments a procedure accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arity {
    /// Number of required positional arguments.
    pub required: usize,
    /// Whether extra arguments are collected into a rest list.
    pub rest: bool,
}

impl Arity {
    /// Exactly `n` arguments.
    pub fn exactly(n: usize) -> Arity {
        Arity {
            required: n,
            rest: false,
        }
    }

    /// `n` or more arguments.
    pub fn at_least(n: usize) -> Arity {
        Arity {
            required: n,
            rest: true,
        }
    }

    /// Whether a call with `n` arguments is acceptable.
    pub fn accepts(&self, n: usize) -> bool {
        if self.rest {
            n >= self.required
        } else {
            n == self.required
        }
    }
}

impl fmt::Display for Arity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rest {
            write!(f, "at least {}", self.required)
        } else {
            write!(f, "exactly {}", self.required)
        }
    }
}

/// A compiled Lagoon procedure. The `code` and `env` payloads belong to the
/// executing engine (`lagoon-vm`), which downcasts them.
pub struct Closure {
    /// Name for error messages, when known.
    pub name: Option<Symbol>,
    /// Accepted argument counts.
    pub arity: Arity,
    /// Engine-owned code payload.
    pub code: Rc<dyn Any>,
    /// Engine-owned captured environment payload.
    pub env: Rc<dyn Any>,
}

impl fmt::Debug for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#<procedure{}>",
            self.name.map(|n| format!(":{n}")).unwrap_or_default()
        )
    }
}

/// The Rust signature of a native primitive.
pub type NativeFn = dyn Fn(&[Value]) -> Result<Value, RtError>;

/// A primitive implemented in Rust.
pub struct Native {
    /// The primitive's name.
    pub name: Symbol,
    /// Accepted argument counts.
    pub arity: Arity,
    /// The implementation.
    pub f: Box<NativeFn>,
}

impl Native {
    /// Wraps a Rust function as a primitive value.
    pub fn value(
        name: &str,
        arity: Arity,
        f: impl Fn(&[Value]) -> Result<Value, RtError> + 'static,
    ) -> Value {
        Value::Native(Rc::new(Native {
            name: Symbol::intern(name),
            arity,
            f: Box::new(f),
        }))
    }
}

impl fmt::Debug for Native {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#<procedure:{}>", self.name)
    }
}

/// A procedure wrapped in a function contract at a module boundary.
///
/// Applying a `Contracted` value checks the arguments against the domain
/// contracts (blaming `negative`, the client) and the result against the
/// range contract (blaming `positive`, the server) — paper §6.1.
#[derive(Debug)]
pub struct Contracted {
    /// The procedure being protected.
    pub inner: Value,
    /// The function contract (see [`crate::contract::Contract`]).
    pub contract: crate::contract::Contract,
    /// Party blamed for bad results (the implementation side).
    pub positive: Symbol,
    /// Party blamed for bad arguments (the client side).
    pub negative: Symbol,
}

/// A Lagoon runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// The unit value `#<void>`.
    Void,
    /// A boolean.
    Bool(bool),
    /// An exact integer (checked `i64`; see DESIGN.md).
    Int(i64),
    /// An inexact real.
    Float(f64),
    /// An inexact complex number (the typed language's `Float-Complex`).
    Complex(f64, f64),
    /// A character.
    Char(char),
    /// A symbol.
    Symbol(Symbol),
    /// A keyword.
    Keyword(Symbol),
    /// An immutable string.
    Str(Rc<str>),
    /// The empty list.
    Nil,
    /// An immutable cons cell.
    Pair(Rc<Pair>),
    /// A mutable vector.
    Vector(Rc<RefCell<Vec<Value>>>),
    /// A mutable box.
    Box(Rc<RefCell<Value>>),
    /// A compiled procedure.
    Closure(Rc<Closure>),
    /// A native primitive.
    Native(Rc<Native>),
    /// A contract-wrapped procedure.
    Contracted(Rc<Contracted>),
    /// A syntax object (phase-1 data).
    Syntax(Syntax),
    /// A package of zero or more values produced by `values` and
    /// consumed by `call-with-values` / the `let-values` desugaring.
    /// A single value is never packaged — `(values x)` is just `x`.
    Values(Rc<Vec<Value>>),
}

/// A cons cell: `.0` is the car, `.1` the cdr.
#[derive(Debug)]
pub struct Pair(pub Value, pub Value);

impl Drop for Pair {
    // walk the cdr spine iteratively: the derived drop would recurse
    // once per cell, and releasing a long list (easily millions of
    // cells under a hostile macro) must not overflow the host stack
    fn drop(&mut self) {
        let mut tail = std::mem::replace(&mut self.1, Value::Nil);
        while let Value::Pair(rc) = tail {
            match Rc::try_unwrap(rc) {
                // sole owner: detach the cell's cdr and keep walking
                Ok(mut cell) => tail = std::mem::replace(&mut cell.1, Value::Nil),
                // shared: the rest of the spine stays alive elsewhere
                Err(_) => break,
            }
        }
    }
}

impl Value {
    /// Builds a cons cell.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Pair(Rc::new(Pair(car, cdr)))
    }

    /// Builds a proper list.
    pub fn list(items: impl IntoIterator<Item = Value, IntoIter: DoubleEndedIterator>) -> Value {
        let mut out = Value::Nil;
        for item in items.into_iter().rev() {
            out = Value::cons(item, out);
        }
        out
    }

    /// Builds a string value.
    pub fn string(s: &str) -> Value {
        Value::Str(Rc::from(s))
    }

    /// Everything but `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// Whether the value can be applied.
    pub fn is_procedure(&self) -> bool {
        matches!(
            self,
            Value::Closure(_) | Value::Native(_) | Value::Contracted(_)
        )
    }

    /// The name of a procedure value, when it carries one (contracted
    /// procedures answer with their wrapped procedure's name).
    pub fn procedure_name(&self) -> Option<Symbol> {
        match self {
            Value::Closure(c) => c.name,
            Value::Native(n) => Some(n.name),
            Value::Contracted(c) => c.inner.procedure_name(),
            _ => None,
        }
    }

    /// The elements, if this is a proper list.
    pub fn list_to_vec(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Nil => return Some(out),
                Value::Pair(p) => {
                    out.push(p.0.clone());
                    cur = p.1.clone();
                }
                _ => return None,
            }
        }
    }

    /// Converts quoted data to a value (`quote` semantics).
    pub fn from_datum(d: &Datum) -> Value {
        match d {
            Datum::Symbol(s) => Value::Symbol(*s),
            Datum::Bool(b) => Value::Bool(*b),
            Datum::Int(n) => Value::Int(*n),
            Datum::Float(x) => Value::Float(*x),
            Datum::Complex(re, im) => Value::Complex(*re, *im),
            Datum::Str(s) => Value::Str(Rc::from(&**s)),
            Datum::Char(c) => Value::Char(*c),
            Datum::Keyword(s) => Value::Keyword(*s),
            Datum::List(items) => Value::list(items.iter().map(Value::from_datum)),
            Datum::Improper(items, tail) => {
                let mut out = Value::from_datum(tail);
                for item in items.iter().rev() {
                    out = Value::cons(Value::from_datum(item), out);
                }
                out
            }
            Datum::Vector(items) => Value::Vector(Rc::new(RefCell::new(
                items.iter().map(Value::from_datum).collect(),
            ))),
        }
    }

    /// Converts back to a datum where possible (procedures, boxes, and
    /// syntax have no datum form).
    pub fn to_datum(&self) -> Option<Datum> {
        match self {
            Value::Bool(b) => Some(Datum::Bool(*b)),
            Value::Int(n) => Some(Datum::Int(*n)),
            Value::Float(x) => Some(Datum::Float(*x)),
            Value::Complex(re, im) => Some(Datum::Complex(*re, *im)),
            Value::Char(c) => Some(Datum::Char(*c)),
            Value::Symbol(s) => Some(Datum::Symbol(*s)),
            Value::Keyword(s) => Some(Datum::Keyword(*s)),
            Value::Str(s) => Some(Datum::string(s)),
            Value::Nil => Some(Datum::nil()),
            Value::Pair(_) => {
                let mut items = Vec::new();
                let mut cur = self.clone();
                loop {
                    match cur {
                        Value::Nil => return Some(Datum::List(items)),
                        Value::Pair(p) => {
                            items.push(p.0.to_datum()?);
                            cur = p.1.clone();
                        }
                        other => return Some(Datum::Improper(items, Box::new(other.to_datum()?))),
                    }
                }
            }
            Value::Vector(v) => Some(Datum::Vector(
                v.borrow()
                    .iter()
                    .map(Value::to_datum)
                    .collect::<Option<Vec<_>>>()?,
            )),
            Value::Syntax(s) => Some(s.to_datum()),
            _ => None,
        }
    }

    /// The name of this value's runtime tag, for error messages.
    pub fn tag_name(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "flonum",
            Value::Complex(_, _) => "float-complex",
            Value::Char(_) => "character",
            Value::Symbol(_) => "symbol",
            Value::Keyword(_) => "keyword",
            Value::Str(_) => "string",
            Value::Nil => "null",
            Value::Pair(_) => "pair",
            Value::Vector(_) => "vector",
            Value::Box(_) => "box",
            Value::Closure(_) | Value::Native(_) | Value::Contracted(_) => "procedure",
            Value::Syntax(_) => "syntax",
            Value::Values(_) => "values",
        }
    }

    /// Pointer/primitive identity (`eq?`).
    pub fn eq_identity(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Void, Value::Void) | (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Symbol(a), Value::Symbol(b)) => a == b,
            (Value::Keyword(a), Value::Keyword(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Rc::ptr_eq(a, b),
            (Value::Pair(a), Value::Pair(b)) => Rc::ptr_eq(a, b),
            (Value::Vector(a), Value::Vector(b)) => Rc::ptr_eq(a, b),
            (Value::Box(a), Value::Box(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Native(a), Value::Native(b)) => Rc::ptr_eq(a, b),
            (Value::Contracted(a), Value::Contracted(b)) => Rc::ptr_eq(a, b),
            (Value::Values(a), Value::Values(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// `eqv?`: identity plus numeric equality on same-tag numbers.
    pub fn eqv(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Complex(ar, ai), Value::Complex(br, bi)) => ar == br && ai == bi,
            _ => self.eq_identity(other),
        }
    }

    /// Deep structural equality (`equal?`).
    pub fn equal(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            // iterate the cdr spine: recursing per cell would overflow
            // the host stack on long lists
            (Value::Pair(_), Value::Pair(_)) => {
                let (mut a, mut b) = (self.clone(), other.clone());
                loop {
                    match (a, b) {
                        (Value::Pair(pa), Value::Pair(pb)) => {
                            if !pa.0.equal(&pb.0) {
                                return false;
                            }
                            a = pa.1.clone();
                            b = pb.1.clone();
                        }
                        (x, y) => return x.equal(&y),
                    }
                }
            }
            (Value::Vector(a), Value::Vector(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equal(y))
            }
            (Value::Box(a), Value::Box(b)) => a.borrow().equal(&b.borrow()),
            _ => self.eqv(other),
        }
    }
}

fn fmt_value(v: &Value, f: &mut fmt::Formatter<'_>, write: bool, top: bool) -> fmt::Result {
    match v {
        Value::Void => f.write_str("#<void>"),
        Value::Bool(true) => f.write_str("#t"),
        Value::Bool(false) => f.write_str("#f"),
        Value::Int(n) => fmt::Display::fmt(n, f),
        Value::Float(x) => write!(f, "{}", Datum::Float(*x)),
        Value::Complex(re, im) => write!(f, "{}", Datum::Complex(*re, *im)),
        Value::Char(c) => {
            if write {
                write!(f, "{}", Datum::Char(*c))
            } else {
                write!(f, "{c}")
            }
        }
        Value::Symbol(s) => {
            if write && top {
                write!(f, "'{s}")
            } else {
                write!(f, "{s}")
            }
        }
        Value::Keyword(s) => write!(f, "#:{s}"),
        Value::Str(s) => {
            if write {
                write!(f, "{}", Datum::string(s))
            } else {
                f.write_str(s)
            }
        }
        Value::Nil => f.write_str(if write && top { "'()" } else { "()" }),
        Value::Pair(_) => {
            if write && top {
                f.write_str("'")?;
            }
            f.write_str("(")?;
            let mut cur = v.clone();
            let mut first = true;
            loop {
                match cur {
                    Value::Nil => break,
                    Value::Pair(p) => {
                        if !first {
                            f.write_str(" ")?;
                        }
                        first = false;
                        fmt_value(&p.0, f, write, false)?;
                        cur = p.1.clone();
                    }
                    other => {
                        f.write_str(" . ")?;
                        fmt_value(&other, f, write, false)?;
                        break;
                    }
                }
            }
            f.write_str(")")
        }
        Value::Vector(items) => {
            f.write_str("#(")?;
            for (i, x) in items.borrow().iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                fmt_value(x, f, write, false)?;
            }
            f.write_str(")")
        }
        Value::Box(b) => {
            f.write_str("#&")?;
            fmt_value(&b.borrow(), f, write, false)
        }
        Value::Closure(c) => write!(f, "{c:?}"),
        Value::Native(n) => write!(f, "{n:?}"),
        Value::Contracted(c) => {
            f.write_str("#<contracted:")?;
            fmt_value(&c.inner, f, write, false)?;
            f.write_str(">")
        }
        Value::Syntax(s) => write!(f, "#<syntax {s}>"),
        Value::Values(vs) => {
            f.write_str("#<values:")?;
            for (i, x) in vs.iter().enumerate() {
                f.write_str(if i > 0 { " " } else { "" })?;
                fmt_value(x, f, write, false)?;
            }
            f.write_str(">")
        }
    }
}

impl fmt::Display for Value {
    /// `display`-mode printing (strings unquoted).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_value(self, f, false, true)
    }
}

impl Value {
    /// `write`-mode printing (strings quoted, symbols with `'`).
    pub fn write_string(&self) -> String {
        struct W<'a>(&'a Value);
        impl fmt::Display for W<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt_value(self.0, f, true, true)
            }
        }
        W(self).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(0).is_truthy());
        assert!(Value::Nil.is_truthy());
        assert!(Value::Void.is_truthy());
    }

    #[test]
    fn list_round_trip() {
        let l = Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let v = l.list_to_vec().unwrap();
        assert_eq!(v.len(), 3);
        assert!(matches!(v[2], Value::Int(3)));
        assert!(Value::cons(Value::Int(1), Value::Int(2))
            .list_to_vec()
            .is_none());
    }

    #[test]
    fn datum_conversion_round_trips() {
        let d = Datum::List(vec![
            Datum::sym("a"),
            Datum::Int(1),
            Datum::Float(2.5),
            Datum::List(vec![Datum::Bool(true)]),
        ]);
        let v = Value::from_datum(&d);
        assert_eq!(v.to_datum().unwrap(), d);
    }

    #[test]
    fn improper_datum_conversion() {
        let d = Datum::Improper(vec![Datum::Int(1)], Box::new(Datum::Int(2)));
        let v = Value::from_datum(&d);
        assert_eq!(v.to_datum().unwrap(), d);
        assert_eq!(v.to_string(), "(1 . 2)");
    }

    #[test]
    fn display_and_write_modes() {
        let s = Value::string("hi");
        assert_eq!(s.to_string(), "hi");
        assert_eq!(s.write_string(), "\"hi\"");
        let l = Value::list(vec![Value::Symbol(Symbol::from("a")), Value::string("b")]);
        assert_eq!(l.to_string(), "(a b)");
        assert_eq!(l.write_string(), "'(a \"b\")");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
    }

    #[test]
    fn equality_ladder() {
        let a = Value::string("x");
        let b = Value::string("x");
        assert!(!a.eq_identity(&b));
        assert!(a.equal(&b));
        assert!(Value::Int(3).eq_identity(&Value::Int(3)));
        assert!(!Value::Float(1.0).eq_identity(&Value::Float(1.0)));
        assert!(Value::Float(1.0).eqv(&Value::Float(1.0)));
        let l1 = Value::list(vec![Value::Int(1), Value::string("s")]);
        let l2 = Value::list(vec![Value::Int(1), Value::string("s")]);
        assert!(l1.equal(&l2));
        assert!(!l1.eqv(&l2));
    }

    #[test]
    fn arity_accepts() {
        assert!(Arity::exactly(2).accepts(2));
        assert!(!Arity::exactly(2).accepts(3));
        assert!(Arity::at_least(1).accepts(1));
        assert!(Arity::at_least(1).accepts(5));
        assert!(!Arity::at_least(1).accepts(0));
    }

    #[test]
    fn native_values_are_procedures() {
        let v = Native::value("id", Arity::exactly(1), |args| Ok(args[0].clone()));
        assert!(v.is_procedure());
        assert_eq!(v.tag_name(), "procedure");
    }
}
