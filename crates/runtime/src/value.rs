//! Runtime values.
//!
//! [`Value`] is the uniform representation of every Lagoon runtime value,
//! packed into a single **NaN-boxed 64-bit word** (see DESIGN.md, "Value
//! words"). Immediates — void, booleans, fixnum-range integers, flonums,
//! characters, symbols, keywords and the empty list — live unboxed in the
//! word itself; everything else is an `Rc` pointer carried in the low 48
//! bits with a heap-kind tag in the pointer's (always-zero) low 3 bits.
//!
//! The encoding, from the top 16 bits (`bits >> 48`):
//!
//! | tag      | payload (low 48 bits)                                |
//! |----------|------------------------------------------------------|
//! | < 0xFFF9 | the word **is** an `f64` (NaN canonicalized)         |
//! | 0xFFF9   | small constants: 0 void, 1 nil, 2 `#f`, 3 `#t`       |
//! | 0xFFFA   | integer, 48-bit sign-extended (else heap "bigint")   |
//! | 0xFFFB   | character (Unicode scalar value)                     |
//! | 0xFFFC   | symbol id (bit 32 set ⇒ keyword)                     |
//! | 0xFFFD   | heap pointer, kind 0–7 in the low 3 bits             |
//! | 0xFFFE   | heap pointer, kinds 8–10 in the low 3 bits           |
//!
//! Every float constructed through [`Value::Float`] canonicalizes NaN to
//! one bit pattern, which is (a) what keeps real NaNs out of the tag
//! space and (b) what makes `eqv?`'s bitwise float semantics (NaN ≡ NaN,
//! `0.0` ≢ `-0.0`) fall out of plain word comparison.
//!
//! Generic primitives dispatch on the tag (and that dispatch is precisely
//! the cost the paper's type-driven optimizer removes by rewriting to
//! `unsafe-*` operations).
//!
//! Pattern-matching call sites go through [`Value::unpacked`], which
//! returns a borrowed [`Unpacked`] view with one variant per runtime
//! kind. Construction sites use the variant-named associated functions
//! (`Value::Int`, `Value::Pair`, …), so they read exactly like the old
//! enum. All `unsafe` pointer packing lives in this file; the rest of the
//! workspace sees a safe API.
//!
//! Procedures come in three flavours:
//!
//! * [`Closure`] — compiled Lagoon code (the code/env payloads are owned by
//!   the VM and stored here as `Rc<dyn Any>`),
//! * [`Native`] — a Rust function exposed as a primitive,
//! * [`Contracted`] — a procedure wrapped in a higher-order contract at a
//!   typed/untyped module boundary (paper §6).
//!
//! Syntax objects are themselves values because macro transformers —
//! phase-1 Lagoon procedures — consume and produce them.

use crate::error::RtError;
use lagoon_syntax::{Datum, Symbol, Syntax};
use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

/// How many arguments a procedure accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arity {
    /// Number of required positional arguments.
    pub required: usize,
    /// Whether extra arguments are collected into a rest list.
    pub rest: bool,
}

impl Arity {
    /// Exactly `n` arguments.
    pub fn exactly(n: usize) -> Arity {
        Arity {
            required: n,
            rest: false,
        }
    }

    /// `n` or more arguments.
    pub fn at_least(n: usize) -> Arity {
        Arity {
            required: n,
            rest: true,
        }
    }

    /// Whether a call with `n` arguments is acceptable.
    pub fn accepts(&self, n: usize) -> bool {
        if self.rest {
            n >= self.required
        } else {
            n == self.required
        }
    }
}

impl fmt::Display for Arity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rest {
            write!(f, "at least {}", self.required)
        } else {
            write!(f, "exactly {}", self.required)
        }
    }
}

/// A compiled Lagoon procedure. The `code` and `env` payloads belong to the
/// executing engine (`lagoon-vm`), which downcasts them.
pub struct Closure {
    /// Name for error messages, when known.
    pub name: Option<Symbol>,
    /// Accepted argument counts.
    pub arity: Arity,
    /// Engine-owned code payload.
    pub code: Rc<dyn Any>,
    /// Engine-owned captured environment payload.
    pub env: Rc<dyn Any>,
}

impl fmt::Debug for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#<procedure{}>",
            self.name.map(|n| format!(":{n}")).unwrap_or_default()
        )
    }
}

/// The Rust signature of a native primitive.
pub type NativeFn = dyn Fn(&[Value]) -> Result<Value, RtError>;

/// A primitive implemented in Rust.
pub struct Native {
    /// The primitive's name.
    pub name: Symbol,
    /// Accepted argument counts.
    pub arity: Arity,
    /// The implementation.
    pub f: Box<NativeFn>,
}

impl Native {
    /// Wraps a Rust function as a primitive value.
    pub fn value(
        name: &str,
        arity: Arity,
        f: impl Fn(&[Value]) -> Result<Value, RtError> + 'static,
    ) -> Value {
        Value::Native(Rc::new(Native {
            name: Symbol::intern(name),
            arity,
            f: Box::new(f),
        }))
    }
}

impl fmt::Debug for Native {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#<procedure:{}>", self.name)
    }
}

/// A procedure wrapped in a function contract at a module boundary.
///
/// Applying a `Contracted` value checks the arguments against the domain
/// contracts (blaming `negative`, the client) and the result against the
/// range contract (blaming `positive`, the server) — paper §6.1.
#[derive(Debug)]
pub struct Contracted {
    /// The procedure being protected.
    pub inner: Value,
    /// The function contract (see [`crate::contract::Contract`]).
    pub contract: crate::contract::Contract,
    /// Party blamed for bad results (the implementation side).
    pub positive: Symbol,
    /// Party blamed for bad arguments (the client side).
    pub negative: Symbol,
}

/// A cons cell: `.0` is the car, `.1` the cdr.
#[derive(Debug)]
pub struct Pair(pub Value, pub Value);

impl Drop for Pair {
    // walk the cdr spine iteratively: the derived drop would recurse
    // once per cell, and releasing a long list (easily millions of
    // cells under a hostile macro) must not overflow the host stack
    fn drop(&mut self) {
        let mut tail = std::mem::replace(&mut self.1, Value::Nil);
        while let Ok(rc) = tail.try_into_pair_rc() {
            match Rc::try_unwrap(rc) {
                // sole owner: detach the cell's cdr and keep walking
                Ok(mut cell) => tail = std::mem::replace(&mut cell.1, Value::Nil),
                // shared: the rest of the spine stays alive elsewhere
                Err(_) => break,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Word layout
// ---------------------------------------------------------------------------

const TAG_SHIFT: u32 = 48;
const PAYLOAD_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;

const TAG_CONST: u64 = 0xFFF9;
const TAG_INT: u64 = 0xFFFA;
const TAG_CHAR: u64 = 0xFFFB;
const TAG_SYM: u64 = 0xFFFC;
const TAG_HEAP_A: u64 = 0xFFFD;
const TAG_HEAP_B: u64 = 0xFFFE;

/// Anything below this is a plain `f64`'s bit pattern: the largest
/// non-NaN float is `-inf` (`0xFFF0…`), and every NaN is canonicalized
/// to `CANON_NAN` on construction, so no float reaches the tag space.
const FLOAT_LIMIT: u64 = TAG_CONST << TAG_SHIFT;
const CANON_NAN: u64 = 0x7FF8_0000_0000_0000;

const VOID_BITS: u64 = TAG_CONST << TAG_SHIFT;
const NIL_BITS: u64 = (TAG_CONST << TAG_SHIFT) | 1;
const FALSE_BITS: u64 = (TAG_CONST << TAG_SHIFT) | 2;
const TRUE_BITS: u64 = (TAG_CONST << TAG_SHIFT) | 3;

/// Set on a `TAG_SYM` word whose symbol is a keyword.
const KEYWORD_BIT: u64 = 1 << 32;

/// Heap payload pointers are `Rc` allocations of 8-aligned types, so the
/// low 3 bits are free for the heap kind.
const PTR_MASK: u64 = 0x0000_FFFF_FFFF_FFF8;
const KIND_MASK: u64 = 0x7;

// heap kinds (tag 0xFFFD carries 0–7, tag 0xFFFE carries 8–10)
const HK_PAIR: u64 = 0;
const HK_STR: u64 = 1;
const HK_VECTOR: u64 = 2;
const HK_BOX: u64 = 3;
const HK_CLOSURE: u64 = 4;
const HK_NATIVE: u64 = 5;
const HK_CONTRACTED: u64 = 6;
const HK_VALUES: u64 = 7;
const HK_SYNTAX: u64 = 8;
const HK_COMPLEX: u64 = 9;
const HK_BIGINT: u64 = 10;

/// A Lagoon runtime value: one NaN-boxed 64-bit word (see module docs).
///
/// `Clone` bumps the refcount for heap kinds and is a plain register copy
/// for immediates; `Drop` releases the `Rc` for heap kinds. The
/// `PhantomData<Rc<()>>` keeps the type `!Send`/`!Sync`, exactly like the
/// `Rc` payloads it may carry.
#[repr(transparent)]
pub struct Value(u64, PhantomData<Rc<()>>);

// a Value must stay exactly one machine word
const _: () = assert!(std::mem::size_of::<Value>() == 8);
const _: () = assert!(std::mem::size_of::<Option<Value>>() == 16);

/// A borrowed one-level view of a [`Value`], for pattern matching.
///
/// Obtained via [`Value::unpacked`]; heap variants borrow the payload
/// (the refcount is not touched). Out-of-range "bigint" integers unpack
/// as plain [`Unpacked::Int`] — the boxing is invisible.
#[derive(Clone, Copy, Debug)]
pub enum Unpacked<'a> {
    /// The unit value `#<void>`.
    Void,
    /// A boolean.
    Bool(bool),
    /// An exact integer (checked `i64`; see DESIGN.md).
    Int(i64),
    /// An inexact real.
    Float(f64),
    /// An inexact complex number (the typed language's `Float-Complex`).
    Complex(f64, f64),
    /// A character.
    Char(char),
    /// A symbol.
    Symbol(Symbol),
    /// A keyword.
    Keyword(Symbol),
    /// An immutable string.
    Str(&'a str),
    /// The empty list.
    Nil,
    /// An immutable cons cell.
    Pair(&'a Pair),
    /// A mutable vector.
    Vector(&'a RefCell<Vec<Value>>),
    /// A mutable box.
    Box(&'a RefCell<Value>),
    /// A compiled procedure.
    Closure(&'a Closure),
    /// A native primitive.
    Native(&'a Native),
    /// A contract-wrapped procedure.
    Contracted(&'a Contracted),
    /// A syntax object (phase-1 data).
    Syntax(&'a Syntax),
    /// A package of zero or more values produced by `values` and
    /// consumed by `call-with-values` / the `let-values` desugaring.
    /// A single value is never packaged — `(values x)` is just `x`.
    Values(&'a [Value]),
}

impl Value {
    #[inline]
    const fn from_bits(bits: u64) -> Value {
        Value(bits, PhantomData)
    }

    /// The raw word. For diagnostics and the VM's word-level fast paths.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.0
    }

    #[inline]
    fn tag(&self) -> u64 {
        self.0 >> TAG_SHIFT
    }

    #[inline]
    fn is_heap(&self) -> bool {
        self.0 >= (TAG_HEAP_A << TAG_SHIFT)
    }

    #[inline]
    fn heap_kind(&self) -> u64 {
        debug_assert!(self.is_heap());
        (self.0 & KIND_MASK) + if self.tag() == TAG_HEAP_B { 8 } else { 0 }
    }

    #[inline]
    fn ptr<T>(&self) -> *const T {
        (self.0 & PTR_MASK) as usize as *const T
    }

    /// # Safety
    /// The word must be a heap value whose kind's payload type is `T`.
    #[inline]
    unsafe fn payload<T>(&self) -> &T {
        &*self.ptr::<T>()
    }

    fn pack_ptr<T>(tag: u64, kind: u64, rc: Rc<T>) -> Value {
        let p = Rc::into_raw(rc) as usize as u64;
        // Rc payloads of 8-aligned types sit at 8-aligned addresses, and
        // user-space pointers fit in 48 bits on every supported target
        debug_assert!(p & !PTR_MASK == 0, "pointer {p:#x} does not fit the word");
        Value::from_bits((tag << TAG_SHIFT) | p | kind)
    }

    /// Clones the `Rc` back out of the word.
    ///
    /// # Safety
    /// The word must be a heap value whose kind's payload type is `T`.
    unsafe fn clone_rc<T>(&self) -> Rc<T> {
        let ptr = self.ptr::<T>();
        Rc::increment_strong_count(ptr);
        Rc::from_raw(ptr)
    }

    /// Consumes a pair word into its `Rc` without touching the refcount;
    /// returns the value unchanged if it is not a pair.
    fn try_into_pair_rc(self) -> Result<Rc<Pair>, Value> {
        if self.is_heap() && self.heap_kind() == HK_PAIR {
            let ptr = self.ptr::<Pair>();
            std::mem::forget(self);
            Ok(unsafe { Rc::from_raw(ptr) })
        } else {
            Err(self)
        }
    }
}

impl Clone for Value {
    #[inline]
    fn clone(&self) -> Value {
        if self.is_heap() {
            // bump the refcount of the packed Rc; the kind match picks the
            // payload type so the count sits at the right offset
            unsafe {
                match self.heap_kind() {
                    HK_PAIR => Rc::increment_strong_count(self.ptr::<Pair>()),
                    HK_STR => Rc::increment_strong_count(self.ptr::<String>()),
                    HK_VECTOR => Rc::increment_strong_count(self.ptr::<RefCell<Vec<Value>>>()),
                    HK_BOX => Rc::increment_strong_count(self.ptr::<RefCell<Value>>()),
                    HK_CLOSURE => Rc::increment_strong_count(self.ptr::<Closure>()),
                    HK_NATIVE => Rc::increment_strong_count(self.ptr::<Native>()),
                    HK_CONTRACTED => Rc::increment_strong_count(self.ptr::<Contracted>()),
                    HK_VALUES => Rc::increment_strong_count(self.ptr::<Vec<Value>>()),
                    HK_SYNTAX => Rc::increment_strong_count(self.ptr::<Syntax>()),
                    HK_COMPLEX => Rc::increment_strong_count(self.ptr::<(f64, f64)>()),
                    _ => Rc::increment_strong_count(self.ptr::<i64>()),
                }
            }
        }
        Value::from_bits(self.0)
    }
}

impl Drop for Value {
    #[inline]
    fn drop(&mut self) {
        if self.is_heap() {
            unsafe {
                match self.heap_kind() {
                    HK_PAIR => drop(Rc::from_raw(self.ptr::<Pair>())),
                    HK_STR => drop(Rc::from_raw(self.ptr::<String>())),
                    HK_VECTOR => drop(Rc::from_raw(self.ptr::<RefCell<Vec<Value>>>())),
                    HK_BOX => drop(Rc::from_raw(self.ptr::<RefCell<Value>>())),
                    HK_CLOSURE => drop(Rc::from_raw(self.ptr::<Closure>())),
                    HK_NATIVE => drop(Rc::from_raw(self.ptr::<Native>())),
                    HK_CONTRACTED => drop(Rc::from_raw(self.ptr::<Contracted>())),
                    HK_VALUES => drop(Rc::from_raw(self.ptr::<Vec<Value>>())),
                    HK_SYNTAX => drop(Rc::from_raw(self.ptr::<Syntax>())),
                    HK_COMPLEX => drop(Rc::from_raw(self.ptr::<(f64, f64)>())),
                    _ => drop(Rc::from_raw(self.ptr::<i64>())),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Constructors — named like the old enum variants so construction sites
// read unchanged
// ---------------------------------------------------------------------------

#[allow(non_upper_case_globals, non_snake_case)]
impl Value {
    /// The unit value `#<void>`.
    pub const Void: Value = Value::from_bits(VOID_BITS);
    /// The empty list.
    pub const Nil: Value = Value::from_bits(NIL_BITS);

    /// A boolean.
    #[inline]
    pub fn Bool(b: bool) -> Value {
        Value::from_bits(if b { TRUE_BITS } else { FALSE_BITS })
    }

    /// An exact integer. Fixnum-range (48-bit) integers are immediate;
    /// the rest box the `i64` on the heap (invisible to `unpacked`).
    #[inline]
    pub fn Int(n: i64) -> Value {
        if ((n << 16) >> 16) == n {
            Value::from_bits((TAG_INT << TAG_SHIFT) | (n as u64 & PAYLOAD_MASK))
        } else {
            Value::pack_ptr(TAG_HEAP_B, HK_BIGINT - 8, Rc::new(n))
        }
    }

    /// An inexact real. Every NaN input canonicalizes to one bit
    /// pattern — required to keep NaNs out of the tag space, and what
    /// gives `eqv?` its NaN ≡ NaN behaviour.
    #[inline]
    pub fn Float(x: f64) -> Value {
        let bits = if x.is_nan() { CANON_NAN } else { x.to_bits() };
        debug_assert!(bits < FLOAT_LIMIT);
        Value::from_bits(bits)
    }

    /// An inexact complex number (components NaN-canonicalized like
    /// [`Value::Float`]).
    pub fn Complex(re: f64, im: f64) -> Value {
        let canon = |x: f64| {
            if x.is_nan() {
                f64::from_bits(CANON_NAN)
            } else {
                x
            }
        };
        Value::pack_ptr(TAG_HEAP_B, HK_COMPLEX - 8, Rc::new((canon(re), canon(im))))
    }

    /// A character.
    #[inline]
    pub fn Char(c: char) -> Value {
        Value::from_bits((TAG_CHAR << TAG_SHIFT) | c as u64)
    }

    /// A symbol.
    #[inline]
    pub fn Symbol(s: Symbol) -> Value {
        Value::from_bits((TAG_SYM << TAG_SHIFT) | u64::from(s.index()))
    }

    /// A keyword.
    #[inline]
    pub fn Keyword(s: Symbol) -> Value {
        Value::from_bits((TAG_SYM << TAG_SHIFT) | KEYWORD_BIT | u64::from(s.index()))
    }

    /// An immutable string.
    #[inline]
    pub fn Str(s: Rc<String>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_STR, s)
    }

    /// An immutable cons cell.
    #[inline]
    pub fn Pair(p: Rc<Pair>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_PAIR, p)
    }

    /// A mutable vector.
    #[inline]
    pub fn Vector(v: Rc<RefCell<Vec<Value>>>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_VECTOR, v)
    }

    /// A mutable box.
    #[inline]
    pub fn Box(b: Rc<RefCell<Value>>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_BOX, b)
    }

    /// A compiled procedure.
    #[inline]
    pub fn Closure(c: Rc<Closure>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_CLOSURE, c)
    }

    /// A native primitive.
    #[inline]
    pub fn Native(n: Rc<Native>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_NATIVE, n)
    }

    /// A contract-wrapped procedure.
    #[inline]
    pub fn Contracted(c: Rc<Contracted>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_CONTRACTED, c)
    }

    /// A syntax object (phase-1 data). `Syntax` is itself a thin
    /// refcounted handle; the extra `Rc` here only buys a stable address
    /// for the word.
    #[inline]
    pub fn Syntax(s: Syntax) -> Value {
        Value::pack_ptr(TAG_HEAP_B, HK_SYNTAX - 8, Rc::new(s))
    }

    /// A multiple-values package.
    #[inline]
    pub fn Values(vs: Rc<Vec<Value>>) -> Value {
        Value::pack_ptr(TAG_HEAP_A, HK_VALUES, vs)
    }
}

// ---------------------------------------------------------------------------
// Views and accessors
// ---------------------------------------------------------------------------

impl Value {
    /// The one-level borrowed view, for pattern matching.
    #[inline]
    pub fn unpacked(&self) -> Unpacked<'_> {
        if self.0 < FLOAT_LIMIT {
            return Unpacked::Float(f64::from_bits(self.0));
        }
        match self.tag() {
            TAG_CONST => match self.0 & PAYLOAD_MASK {
                0 => Unpacked::Void,
                1 => Unpacked::Nil,
                2 => Unpacked::Bool(false),
                _ => Unpacked::Bool(true),
            },
            TAG_INT => Unpacked::Int(((self.0 << 16) as i64) >> 16),
            TAG_CHAR => {
                // only constructed from a validated char
                Unpacked::Char(char::from_u32((self.0 & PAYLOAD_MASK) as u32).unwrap_or('\u{0}'))
            }
            TAG_SYM => {
                let sym = Symbol::from_index(self.0 as u32);
                if self.0 & KEYWORD_BIT != 0 {
                    Unpacked::Keyword(sym)
                } else {
                    Unpacked::Symbol(sym)
                }
            }
            _ => unsafe {
                match self.heap_kind() {
                    HK_PAIR => Unpacked::Pair(self.payload::<Pair>()),
                    HK_STR => Unpacked::Str(self.payload::<String>()),
                    HK_VECTOR => Unpacked::Vector(self.payload::<RefCell<Vec<Value>>>()),
                    HK_BOX => Unpacked::Box(self.payload::<RefCell<Value>>()),
                    HK_CLOSURE => Unpacked::Closure(self.payload::<Closure>()),
                    HK_NATIVE => Unpacked::Native(self.payload::<Native>()),
                    HK_CONTRACTED => Unpacked::Contracted(self.payload::<Contracted>()),
                    HK_VALUES => Unpacked::Values(self.payload::<Vec<Value>>()),
                    HK_SYNTAX => Unpacked::Syntax(self.payload::<Syntax>()),
                    HK_COMPLEX => {
                        let (re, im) = *self.payload::<(f64, f64)>();
                        Unpacked::Complex(re, im)
                    }
                    _ => Unpacked::Int(*self.payload::<i64>()),
                }
            },
        }
    }

    /// Whether the word is a flonum.
    #[inline]
    pub fn is_float(&self) -> bool {
        self.0 < FLOAT_LIMIT
    }

    /// The flonum payload.
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        if self.is_float() {
            Some(f64::from_bits(self.0))
        } else {
            None
        }
    }

    /// Whether the word is an exact integer (immediate or boxed).
    #[inline]
    pub fn is_int(&self) -> bool {
        self.tag() == TAG_INT || (self.is_heap() && self.heap_kind() == HK_BIGINT)
    }

    /// The integer payload (immediate or boxed).
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        if self.tag() == TAG_INT {
            Some(((self.0 << 16) as i64) >> 16)
        } else if self.is_heap() && self.heap_kind() == HK_BIGINT {
            Some(unsafe { *self.payload::<i64>() })
        } else {
            None
        }
    }

    /// The boolean payload.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self.0 {
            TRUE_BITS => Some(true),
            FALSE_BITS => Some(false),
            _ => None,
        }
    }

    /// Whether this is `#<void>`.
    #[inline]
    pub fn is_void(&self) -> bool {
        self.0 == VOID_BITS
    }

    /// Whether this is the empty list.
    #[inline]
    pub fn is_nil(&self) -> bool {
        self.0 == NIL_BITS
    }

    /// The character payload.
    #[inline]
    pub fn as_char(&self) -> Option<char> {
        if self.tag() == TAG_CHAR {
            char::from_u32((self.0 & PAYLOAD_MASK) as u32)
        } else {
            None
        }
    }

    /// The symbol payload (not keywords).
    #[inline]
    pub fn as_symbol(&self) -> Option<Symbol> {
        if self.tag() == TAG_SYM && self.0 & KEYWORD_BIT == 0 {
            Some(Symbol::from_index(self.0 as u32))
        } else {
            None
        }
    }

    /// The keyword payload.
    #[inline]
    pub fn as_keyword(&self) -> Option<Symbol> {
        if self.tag() == TAG_SYM && self.0 & KEYWORD_BIT != 0 {
            Some(Symbol::from_index(self.0 as u32))
        } else {
            None
        }
    }

    #[inline]
    fn heap_as<T>(&self, kind: u64) -> Option<&T> {
        if self.is_heap() && self.heap_kind() == kind {
            Some(unsafe { self.payload::<T>() })
        } else {
            None
        }
    }

    /// The string payload.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        self.heap_as::<String>(HK_STR).map(String::as_str)
    }

    /// Whether the word is a string.
    #[inline]
    pub fn is_string(&self) -> bool {
        self.is_heap() && self.heap_kind() == HK_STR
    }

    /// The cons-cell payload.
    #[inline]
    pub fn as_pair(&self) -> Option<&Pair> {
        self.heap_as::<Pair>(HK_PAIR)
    }

    /// The vector payload.
    #[inline]
    pub fn as_vector(&self) -> Option<&RefCell<Vec<Value>>> {
        self.heap_as::<RefCell<Vec<Value>>>(HK_VECTOR)
    }

    /// The box payload.
    #[inline]
    pub fn as_box(&self) -> Option<&RefCell<Value>> {
        self.heap_as::<RefCell<Value>>(HK_BOX)
    }

    /// The closure payload.
    #[inline]
    pub fn as_closure(&self) -> Option<&Closure> {
        self.heap_as::<Closure>(HK_CLOSURE)
    }

    /// The native-primitive payload.
    #[inline]
    pub fn as_native(&self) -> Option<&Native> {
        self.heap_as::<Native>(HK_NATIVE)
    }

    /// The contracted-procedure payload.
    #[inline]
    pub fn as_contracted(&self) -> Option<&Contracted> {
        self.heap_as::<Contracted>(HK_CONTRACTED)
    }

    /// The syntax-object payload.
    #[inline]
    pub fn as_syntax(&self) -> Option<&Syntax> {
        self.heap_as::<Syntax>(HK_SYNTAX)
    }

    /// The multiple-values payload.
    #[inline]
    pub fn as_values(&self) -> Option<&[Value]> {
        self.heap_as::<Vec<Value>>(HK_VALUES).map(Vec::as_slice)
    }

    /// The complex payload.
    #[inline]
    pub fn as_complex(&self) -> Option<(f64, f64)> {
        self.heap_as::<(f64, f64)>(HK_COMPLEX).copied()
    }

    /// Whether the word is a complex number.
    #[inline]
    pub fn is_complex(&self) -> bool {
        self.is_heap() && self.heap_kind() == HK_COMPLEX
    }

    /// An owning handle to the string payload.
    pub fn to_str_rc(&self) -> Option<Rc<String>> {
        if self.is_heap() && self.heap_kind() == HK_STR {
            Some(unsafe { self.clone_rc::<String>() })
        } else {
            None
        }
    }

    /// An owning handle to the cons-cell payload.
    pub fn to_pair_rc(&self) -> Option<Rc<Pair>> {
        if self.is_heap() && self.heap_kind() == HK_PAIR {
            Some(unsafe { self.clone_rc::<Pair>() })
        } else {
            None
        }
    }

    /// An owning handle to the vector payload.
    pub fn to_vector_rc(&self) -> Option<Rc<RefCell<Vec<Value>>>> {
        if self.is_heap() && self.heap_kind() == HK_VECTOR {
            Some(unsafe { self.clone_rc::<RefCell<Vec<Value>>>() })
        } else {
            None
        }
    }

    /// An owning handle to the box payload.
    pub fn to_box_rc(&self) -> Option<Rc<RefCell<Value>>> {
        if self.is_heap() && self.heap_kind() == HK_BOX {
            Some(unsafe { self.clone_rc::<RefCell<Value>>() })
        } else {
            None
        }
    }

    /// An owning handle to the closure payload.
    pub fn to_closure_rc(&self) -> Option<Rc<Closure>> {
        if self.is_heap() && self.heap_kind() == HK_CLOSURE {
            Some(unsafe { self.clone_rc::<Closure>() })
        } else {
            None
        }
    }

    /// An owning handle to the native-primitive payload.
    pub fn to_native_rc(&self) -> Option<Rc<Native>> {
        if self.is_heap() && self.heap_kind() == HK_NATIVE {
            Some(unsafe { self.clone_rc::<Native>() })
        } else {
            None
        }
    }

    /// An owning handle to the contracted-procedure payload.
    pub fn to_contracted_rc(&self) -> Option<Rc<Contracted>> {
        if self.is_heap() && self.heap_kind() == HK_CONTRACTED {
            Some(unsafe { self.clone_rc::<Contracted>() })
        } else {
            None
        }
    }

    /// An owning handle to the multiple-values payload.
    pub fn to_values_rc(&self) -> Option<Rc<Vec<Value>>> {
        if self.is_heap() && self.heap_kind() == HK_VALUES {
            Some(unsafe { self.clone_rc::<Vec<Value>>() })
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// The old convenience / semantic API, unchanged in signature
// ---------------------------------------------------------------------------

impl Value {
    /// Builds a cons cell.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Pair(Rc::new(Pair(car, cdr)))
    }

    /// Builds a proper list.
    pub fn list(items: impl IntoIterator<Item = Value, IntoIter: DoubleEndedIterator>) -> Value {
        let mut out = Value::Nil;
        for item in items.into_iter().rev() {
            out = Value::cons(item, out);
        }
        out
    }

    /// Builds a string value.
    pub fn string(s: &str) -> Value {
        Value::Str(Rc::new(s.to_owned()))
    }

    /// Builds a mutable vector value.
    pub fn vector(items: Vec<Value>) -> Value {
        Value::Vector(Rc::new(RefCell::new(items)))
    }

    /// Everything but `#f` is true.
    #[inline]
    pub fn is_truthy(&self) -> bool {
        self.0 != FALSE_BITS
    }

    /// Whether the value can be applied.
    #[inline]
    pub fn is_procedure(&self) -> bool {
        self.is_heap() && matches!(self.heap_kind(), HK_CLOSURE | HK_NATIVE | HK_CONTRACTED)
    }

    /// The name of a procedure value, when it carries one (contracted
    /// procedures answer with their wrapped procedure's name).
    pub fn procedure_name(&self) -> Option<Symbol> {
        match self.unpacked() {
            Unpacked::Closure(c) => c.name,
            Unpacked::Native(n) => Some(n.name),
            Unpacked::Contracted(c) => c.inner.procedure_name(),
            _ => None,
        }
    }

    /// The elements, if this is a proper list.
    pub fn list_to_vec(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            if cur.is_nil() {
                return Some(out);
            }
            let p = cur.as_pair()?;
            out.push(p.0.clone());
            let next = p.1.clone();
            cur = next;
        }
    }

    /// Converts quoted data to a value (`quote` semantics).
    pub fn from_datum(d: &Datum) -> Value {
        match d {
            Datum::Symbol(s) => Value::Symbol(*s),
            Datum::Bool(b) => Value::Bool(*b),
            Datum::Int(n) => Value::Int(*n),
            Datum::Float(x) => Value::Float(*x),
            Datum::Complex(re, im) => Value::Complex(*re, *im),
            Datum::Str(s) => Value::string(s),
            Datum::Char(c) => Value::Char(*c),
            Datum::Keyword(s) => Value::Keyword(*s),
            Datum::List(items) => Value::list(items.iter().map(Value::from_datum)),
            Datum::Improper(items, tail) => {
                let mut out = Value::from_datum(tail);
                for item in items.iter().rev() {
                    out = Value::cons(Value::from_datum(item), out);
                }
                out
            }
            Datum::Vector(items) => Value::Vector(Rc::new(RefCell::new(
                items.iter().map(Value::from_datum).collect(),
            ))),
        }
    }

    /// Converts back to a datum where possible (procedures, boxes, and
    /// syntax have no datum form).
    pub fn to_datum(&self) -> Option<Datum> {
        match self.unpacked() {
            Unpacked::Bool(b) => Some(Datum::Bool(b)),
            Unpacked::Int(n) => Some(Datum::Int(n)),
            Unpacked::Float(x) => Some(Datum::Float(x)),
            Unpacked::Complex(re, im) => Some(Datum::Complex(re, im)),
            Unpacked::Char(c) => Some(Datum::Char(c)),
            Unpacked::Symbol(s) => Some(Datum::Symbol(s)),
            Unpacked::Keyword(s) => Some(Datum::Keyword(s)),
            Unpacked::Str(s) => Some(Datum::string(s)),
            Unpacked::Nil => Some(Datum::nil()),
            Unpacked::Pair(_) => {
                let mut items = Vec::new();
                let mut cur = self.clone();
                loop {
                    if cur.is_nil() {
                        return Some(Datum::List(items));
                    }
                    if let Some(p) = cur.as_pair() {
                        items.push(p.0.to_datum()?);
                        let next = p.1.clone();
                        cur = next;
                    } else {
                        return Some(Datum::Improper(items, Box::new(cur.to_datum()?)));
                    }
                }
            }
            Unpacked::Vector(v) => Some(Datum::Vector(
                v.borrow()
                    .iter()
                    .map(Value::to_datum)
                    .collect::<Option<Vec<_>>>()?,
            )),
            Unpacked::Syntax(s) => Some(s.to_datum()),
            _ => None,
        }
    }

    /// The name of this value's runtime tag, for error messages.
    pub fn tag_name(&self) -> &'static str {
        match self.unpacked() {
            Unpacked::Void => "void",
            Unpacked::Bool(_) => "boolean",
            Unpacked::Int(_) => "integer",
            Unpacked::Float(_) => "flonum",
            Unpacked::Complex(_, _) => "float-complex",
            Unpacked::Char(_) => "character",
            Unpacked::Symbol(_) => "symbol",
            Unpacked::Keyword(_) => "keyword",
            Unpacked::Str(_) => "string",
            Unpacked::Nil => "null",
            Unpacked::Pair(_) => "pair",
            Unpacked::Vector(_) => "vector",
            Unpacked::Box(_) => "box",
            Unpacked::Closure(_) | Unpacked::Native(_) | Unpacked::Contracted(_) => "procedure",
            Unpacked::Syntax(_) => "syntax",
            Unpacked::Values(_) => "values",
        }
    }

    /// Pointer/primitive identity (`eq?`).
    ///
    /// Flonums and complex numbers never answer `#t` (they were carried
    /// inline before the word representation and so never had identity;
    /// boxed integers compare by value like immediates).
    #[inline]
    pub fn eq_identity(&self, other: &Value) -> bool {
        if self.0 == other.0 {
            return !(self.is_float() || self.is_complex());
        }
        // out-of-range integers live in separate boxes but are still the
        // same integer
        match (self.as_int(), other.as_int()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// `eqv?`: identity plus numeric equality on same-tag numbers.
    ///
    /// Flonums follow Racket's *bitwise-style* `eqv?` semantics, not
    /// IEEE `=`: `(eqv? +nan.0 +nan.0)` is `#t` (every NaN is
    /// canonicalized to one bit pattern at construction) and
    /// `(eqv? 0.0 -0.0)` is `#f`. Complex numbers compare the same way,
    /// componentwise. `=` and `equal?` keep IEEE behaviour.
    #[inline]
    pub fn eqv(&self, other: &Value) -> bool {
        if self.is_float() && other.is_float() {
            return self.0 == other.0;
        }
        if let (Some((ar, ai)), Some((br, bi))) = (self.as_complex(), other.as_complex()) {
            return ar.to_bits() == br.to_bits() && ai.to_bits() == bi.to_bits();
        }
        self.eq_identity(other)
    }

    /// Deep structural equality (`equal?`). Numbers keep IEEE
    /// comparison semantics (`(equal? +nan.0 +nan.0)` is `#f`,
    /// `(equal? 0.0 -0.0)` is `#t`) — see `eqv` for the bitwise ladder.
    pub fn equal(&self, other: &Value) -> bool {
        match (self.unpacked(), other.unpacked()) {
            (Unpacked::Float(a), Unpacked::Float(b)) => a == b,
            (Unpacked::Complex(ar, ai), Unpacked::Complex(br, bi)) => ar == br && ai == bi,
            (Unpacked::Str(a), Unpacked::Str(b)) => a == b,
            // iterate the cdr spine: recursing per cell would overflow
            // the host stack on long lists
            (Unpacked::Pair(_), Unpacked::Pair(_)) => {
                let (mut a, mut b) = (self.clone(), other.clone());
                loop {
                    match (a.as_pair(), b.as_pair()) {
                        (Some(pa), Some(pb)) => {
                            if !pa.0.equal(&pb.0) {
                                return false;
                            }
                            let (na, nb) = (pa.1.clone(), pb.1.clone());
                            a = na;
                            b = nb;
                        }
                        _ => return a.equal(&b),
                    }
                }
            }
            (Unpacked::Vector(a), Unpacked::Vector(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equal(y))
            }
            (Unpacked::Box(a), Unpacked::Box(b)) => a.borrow().equal(&b.borrow()),
            _ => self.eqv(other),
        }
    }
}

fn fmt_value(v: &Value, f: &mut fmt::Formatter<'_>, write: bool, top: bool) -> fmt::Result {
    match v.unpacked() {
        Unpacked::Void => f.write_str("#<void>"),
        Unpacked::Bool(true) => f.write_str("#t"),
        Unpacked::Bool(false) => f.write_str("#f"),
        Unpacked::Int(n) => fmt::Display::fmt(&n, f),
        Unpacked::Float(x) => write!(f, "{}", Datum::Float(x)),
        Unpacked::Complex(re, im) => write!(f, "{}", Datum::Complex(re, im)),
        Unpacked::Char(c) => {
            if write {
                write!(f, "{}", Datum::Char(c))
            } else {
                write!(f, "{c}")
            }
        }
        Unpacked::Symbol(s) => {
            if write && top {
                write!(f, "'{s}")
            } else {
                write!(f, "{s}")
            }
        }
        Unpacked::Keyword(s) => write!(f, "#:{s}"),
        Unpacked::Str(s) => {
            if write {
                write!(f, "{}", Datum::string(s))
            } else {
                f.write_str(s)
            }
        }
        Unpacked::Nil => f.write_str(if write && top { "'()" } else { "()" }),
        Unpacked::Pair(_) => {
            if write && top {
                f.write_str("'")?;
            }
            f.write_str("(")?;
            let mut cur = v.clone();
            let mut first = true;
            loop {
                if cur.is_nil() {
                    break;
                }
                if let Some(p) = cur.as_pair() {
                    if !first {
                        f.write_str(" ")?;
                    }
                    first = false;
                    fmt_value(&p.0, f, write, false)?;
                    let next = p.1.clone();
                    cur = next;
                } else {
                    f.write_str(" . ")?;
                    fmt_value(&cur, f, write, false)?;
                    break;
                }
            }
            f.write_str(")")
        }
        Unpacked::Vector(items) => {
            f.write_str("#(")?;
            for (i, x) in items.borrow().iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                fmt_value(x, f, write, false)?;
            }
            f.write_str(")")
        }
        Unpacked::Box(b) => {
            f.write_str("#&")?;
            fmt_value(&b.borrow(), f, write, false)
        }
        Unpacked::Closure(c) => write!(f, "{c:?}"),
        Unpacked::Native(n) => write!(f, "{n:?}"),
        Unpacked::Contracted(c) => {
            f.write_str("#<contracted:")?;
            fmt_value(&c.inner, f, write, false)?;
            f.write_str(">")
        }
        Unpacked::Syntax(s) => write!(f, "#<syntax {s}>"),
        Unpacked::Values(vs) => {
            f.write_str("#<values:")?;
            for (i, x) in vs.iter().enumerate() {
                f.write_str(if i > 0 { " " } else { "" })?;
                fmt_value(x, f, write, false)?;
            }
            f.write_str(">")
        }
    }
}

impl fmt::Display for Value {
    /// `display`-mode printing (strings unquoted).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_value(self, f, false, true)
    }
}

impl fmt::Debug for Value {
    /// Mirrors the derive output of the old `enum Value` where practical.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.unpacked() {
            Unpacked::Void => f.write_str("Void"),
            Unpacked::Nil => f.write_str("Nil"),
            Unpacked::Bool(b) => f.debug_tuple("Bool").field(&b).finish(),
            Unpacked::Int(n) => f.debug_tuple("Int").field(&n).finish(),
            Unpacked::Float(x) => f.debug_tuple("Float").field(&x).finish(),
            Unpacked::Complex(re, im) => f.debug_tuple("Complex").field(&re).field(&im).finish(),
            Unpacked::Char(c) => f.debug_tuple("Char").field(&c).finish(),
            Unpacked::Symbol(s) => f.debug_tuple("Symbol").field(&s).finish(),
            Unpacked::Keyword(s) => f.debug_tuple("Keyword").field(&s).finish(),
            Unpacked::Str(s) => f.debug_tuple("Str").field(&s).finish(),
            Unpacked::Pair(p) => f.debug_tuple("Pair").field(p).finish(),
            Unpacked::Vector(v) => f.debug_tuple("Vector").field(v).finish(),
            Unpacked::Box(b) => f.debug_tuple("Box").field(b).finish(),
            Unpacked::Closure(c) => write!(f, "Closure({c:?})"),
            Unpacked::Native(n) => write!(f, "Native({n:?})"),
            Unpacked::Contracted(c) => f.debug_tuple("Contracted").field(c).finish(),
            Unpacked::Syntax(s) => write!(f, "Syntax({s})"),
            Unpacked::Values(vs) => f.debug_tuple("Values").field(&vs).finish(),
        }
    }
}

impl Value {
    /// `write`-mode printing (strings quoted, symbols with `'`).
    pub fn write_string(&self) -> String {
        struct W<'a>(&'a Value);
        impl fmt::Display for W<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt_value(self.0, f, true, true)
            }
        }
        W(self).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(0).is_truthy());
        assert!(Value::Nil.is_truthy());
        assert!(Value::Void.is_truthy());
    }

    #[test]
    fn word_round_trips_every_kind() {
        assert!(Value::Void.is_void());
        assert!(Value::Nil.is_nil());
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(42).as_int(), Some(42));
        assert_eq!(Value::Int(-42).as_int(), Some(-42));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Char('λ').as_char(), Some('λ'));
        let s = Symbol::intern("word-test-sym");
        assert_eq!(Value::Symbol(s).as_symbol(), Some(s));
        assert_eq!(Value::Symbol(s).as_keyword(), None);
        assert_eq!(Value::Keyword(s).as_keyword(), Some(s));
        assert_eq!(Value::Keyword(s).as_symbol(), None);
        assert_eq!(Value::string("hi").as_str(), Some("hi"));
        assert_eq!(Value::Complex(1.0, -2.0).as_complex(), Some((1.0, -2.0)));
        let v = Value::Vector(Rc::new(RefCell::new(vec![Value::Int(1)])));
        assert_eq!(v.as_vector().unwrap().borrow().len(), 1);
        let b = Value::Box(Rc::new(RefCell::new(Value::Int(7))));
        assert_eq!(b.as_box().unwrap().borrow().as_int(), Some(7));
    }

    #[test]
    fn int_immediate_boundary_and_boxing() {
        // 48-bit signed immediates; anything wider is heap-boxed but
        // indistinguishable through the API
        let lo = -(1i64 << 47);
        let hi = (1i64 << 47) - 1;
        for n in [0, 1, -1, lo, hi, lo - 1, hi + 1, i64::MIN, i64::MAX] {
            let v = Value::Int(n);
            assert_eq!(v.as_int(), Some(n), "round-trip {n}");
            assert!(matches!(v.unpacked(), Unpacked::Int(m) if m == n));
            assert!(v.eq_identity(&Value::Int(n)), "identity {n}");
            assert!(v.eqv(&Value::Int(n)));
            assert!(v.equal(&Value::Int(n)));
        }
        assert!(!Value::Int(i64::MAX).eqv(&Value::Int(i64::MIN)));
    }

    #[test]
    fn floats_stay_out_of_tag_space() {
        for x in [
            0.0,
            -0.0,
            1.5,
            -1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            f64::NAN,
            -f64::NAN,
        ] {
            let v = Value::Float(x);
            assert!(v.is_float(), "{x} must stay a float");
            let back = v.as_float().unwrap();
            assert!(back == x || (back.is_nan() && x.is_nan()));
        }
        // every NaN canonicalizes to one word
        assert_eq!(
            Value::Float(f64::NAN).bits(),
            Value::Float(-f64::NAN).bits()
        );
        assert_eq!(
            Value::Float(f64::NAN).bits(),
            Value::Float(f64::from_bits(0x7FF0_0000_0000_0001)).bits()
        );
    }

    #[test]
    fn clone_and_drop_balance_refcounts() {
        let rc = Rc::new(String::from("shared"));
        let probe = Rc::clone(&rc);
        assert_eq!(Rc::strong_count(&probe), 2);
        let v = Value::Str(rc);
        assert_eq!(Rc::strong_count(&probe), 2);
        let v2 = v.clone();
        assert_eq!(Rc::strong_count(&probe), 3);
        drop(v);
        assert_eq!(Rc::strong_count(&probe), 2);
        drop(v2);
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn list_round_trip() {
        let l = Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let v = l.list_to_vec().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].as_int(), Some(3));
        assert!(Value::cons(Value::Int(1), Value::Int(2))
            .list_to_vec()
            .is_none());
    }

    #[test]
    fn long_list_drop_does_not_overflow() {
        let mut l = Value::Nil;
        for i in 0..200_000 {
            l = Value::cons(Value::Int(i), l);
        }
        drop(l);
    }

    #[test]
    fn datum_conversion_round_trips() {
        let d = Datum::List(vec![
            Datum::sym("a"),
            Datum::Int(1),
            Datum::Float(2.5),
            Datum::List(vec![Datum::Bool(true)]),
        ]);
        let v = Value::from_datum(&d);
        assert_eq!(v.to_datum().unwrap(), d);
    }

    #[test]
    fn improper_datum_conversion() {
        let d = Datum::Improper(vec![Datum::Int(1)], Box::new(Datum::Int(2)));
        let v = Value::from_datum(&d);
        assert_eq!(v.to_datum().unwrap(), d);
        assert_eq!(v.to_string(), "(1 . 2)");
    }

    #[test]
    fn display_and_write_modes() {
        let s = Value::string("hi");
        assert_eq!(s.to_string(), "hi");
        assert_eq!(s.write_string(), "\"hi\"");
        let l = Value::list(vec![Value::Symbol(Symbol::from("a")), Value::string("b")]);
        assert_eq!(l.to_string(), "(a b)");
        assert_eq!(l.write_string(), "'(a \"b\")");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
    }

    #[test]
    fn equality_ladder() {
        let a = Value::string("x");
        let b = Value::string("x");
        assert!(!a.eq_identity(&b));
        assert!(a.equal(&b));
        assert!(Value::Int(3).eq_identity(&Value::Int(3)));
        assert!(!Value::Float(1.0).eq_identity(&Value::Float(1.0)));
        assert!(Value::Float(1.0).eqv(&Value::Float(1.0)));
        let l1 = Value::list(vec![Value::Int(1), Value::string("s")]);
        let l2 = Value::list(vec![Value::Int(1), Value::string("s")]);
        assert!(l1.equal(&l2));
        assert!(!l1.eqv(&l2));
    }

    /// The Racket-checked equality table for flonum edge cases
    /// (satellite bugfix). Checked against Racket 8.x:
    ///
    /// | expression                 | Racket | Lagoon |
    /// |----------------------------|--------|--------|
    /// | `(eqv? +nan.0 +nan.0)`     | `#t`   | `#t`   |
    /// | `(eqv? 0.0 -0.0)`          | `#f`   | `#f`   |
    /// | `(eqv? 0.0 0.0)`           | `#t`   | `#t`   |
    /// | `(eqv? 1.0 1.0)`           | `#t`   | `#t`   |
    /// | `(= +nan.0 +nan.0)`        | `#f`   | `#f`   |
    /// | `(= 0.0 -0.0)`             | `#t`   | `#t`   |
    /// | `(equal? 0.0 -0.0)`        | `#f`*  | `#t`   |
    /// | `(equal? +nan.0 +nan.0)`   | `#t`*  | `#f`   |
    ///
    /// *Racket's `equal?` defers to `eqv?` on numbers; ISSUE 8 specifies
    /// that Lagoon's `equal?` keeps IEEE semantics (matching `=`), so the
    /// last two rows intentionally diverge and are pinned here.
    #[test]
    fn flonum_equality_table() {
        let nan = Value::Float(f64::NAN);
        let nan2 = Value::Float(f64::from_bits(0xFFF8_0000_0000_0001));
        let pz = Value::Float(0.0);
        let nz = Value::Float(-0.0);
        // eqv?: bitwise-style
        assert!(nan.eqv(&nan2), "(eqv? +nan.0 +nan.0) => #t");
        assert!(!pz.eqv(&nz), "(eqv? 0.0 -0.0) => #f");
        assert!(pz.eqv(&pz.clone()), "(eqv? 0.0 0.0) => #t");
        assert!(Value::Float(1.0).eqv(&Value::Float(1.0)));
        // equal?: IEEE
        assert!(!nan.equal(&nan2), "(equal? +nan.0 +nan.0) => #f (IEEE)");
        assert!(pz.equal(&nz), "(equal? 0.0 -0.0) => #t (IEEE)");
        // complexes follow the same split, componentwise
        let cn = Value::Complex(f64::NAN, 1.0);
        let cn2 = Value::Complex(f64::NAN, 1.0);
        assert!(cn.eqv(&cn2), "(eqv? +nan.0+1.0i +nan.0+1.0i) => #t");
        assert!(!cn.equal(&cn2), "(equal? ...) keeps IEEE => #f");
        let cz = Value::Complex(0.0, 0.0);
        let cnz = Value::Complex(-0.0, 0.0);
        assert!(!cz.eqv(&cnz), "(eqv? 0.0+0.0i -0.0+0.0i) => #f");
        assert!(cz.equal(&cnz), "(equal? 0.0+0.0i -0.0+0.0i) => #t (IEEE)");
        // nested: equal? recurs through structure with IEEE leaves, and
        // eqv? on lists is identity (unchanged)
        let l1 = Value::list(vec![pz.clone()]);
        let l2 = Value::list(vec![nz.clone()]);
        assert!(l1.equal(&l2));
        assert!(!l1.eqv(&l2));
    }

    #[test]
    fn arity_accepts() {
        assert!(Arity::exactly(2).accepts(2));
        assert!(!Arity::exactly(2).accepts(3));
        assert!(Arity::at_least(1).accepts(1));
        assert!(Arity::at_least(1).accepts(5));
        assert!(!Arity::at_least(1).accepts(0));
    }

    #[test]
    fn native_values_are_procedures() {
        let v = Native::value("id", Arity::exactly(1), |args| Ok(args[0].clone()));
        assert!(v.is_procedure());
        assert_eq!(v.tag_name(), "procedure");
        assert!(v.to_native_rc().is_some());
        assert!(v.to_closure_rc().is_none());
    }
}
