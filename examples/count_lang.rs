//! The paper's §2.3 example: the `count` language, a complete `#lang`
//! implemented in a dozen lines of hosted code. Its `#%module-begin`
//! macro receives the entire module body, so it can implement
//! whole-module semantics — here, reporting how many top-level
//! expressions the program contains before running it.
//!
//! Run with: `cargo run --example count_lang`

use lagoon::{EngineKind, Lagoon};

fn main() -> Result<(), lagoon::RtError> {
    let lagoon = Lagoon::new();

    // the language: a module that exports #%module-begin
    lagoon.add_module(
        "count",
        r#"#lang lagoon
(define-syntax (#%module-begin stx)
  (syntax-parse stx
    [(#%module-begin body ...)
     #`(#%plain-module-begin
        (printf "Found ~a expressions." '#,(length (syntax->list #'(body ...))))
        body ...)]))
(provide #%module-begin)
"#,
    );

    // the program from the paper
    lagoon.add_module(
        "prog",
        "#lang count
(printf \"*~a\" (+ 1 2))
(printf \"*~a\" (- 4 3))
",
    );

    let (_, output) = lagoon.run_capturing("prog", EngineKind::Vm)?;
    println!("{output}");
    assert_eq!(output, "Found 2 expressions.*3*1");
    println!("\n(matches the paper: \"Found 2 expressions.*3*1\")");
    Ok(())
}
