//! The type-driven optimizer at work (paper §7): compare the expanded
//! core code of a typed module with and without the optimizer pass,
//! time the difference on the bytecode VM, then print the optimizer's
//! decision log and the executed opcode mix from an instrumented run.
//!
//! Run with: `cargo run --release --example optimizer_demo`

use lagoon::{EngineKind, Lagoon};
use std::time::Instant;

const KERNEL: &str = r#"
(: poly : Float Float -> Float)
(define (poly x acc) (+ (* acc x) (sqrt (+ (* x x) 1.0))))
(: go : Integer Float -> Float)
(define (go i acc)
  (if (= i 0) acc (go (- i 1) (poly 1.000001 acc))))
(go 2000000 0.0)
"#;

fn main() -> Result<(), lagoon::RtError> {
    let lagoon = Lagoon::new();
    lagoon.add_module("opt", &format!("#lang typed/lagoon\n{KERNEL}"));
    lagoon.add_module("unopt", &format!("#lang typed/no-opt\n{KERNEL}"));

    println!("== expanded core code, optimizer ON (typed/lagoon) ==");
    for form in lagoon.expanded("opt")? {
        let s = form.to_datum().to_string();
        if s.contains("poly") && s.contains("lambda") {
            println!("{s}\n");
        }
    }
    println!("== expanded core code, optimizer OFF (typed/no-opt) ==");
    for form in lagoon.expanded("unopt")? {
        let s = form.to_datum().to_string();
        if s.contains("poly") && s.contains("lambda") {
            println!("{s}\n");
        }
    }

    let t0 = Instant::now();
    let v1 = lagoon.run("unopt", EngineKind::Vm)?;
    let unopt_time = t0.elapsed();
    let t0 = Instant::now();
    let v2 = lagoon.run("opt", EngineKind::Vm)?;
    let opt_time = t0.elapsed();
    assert!(v1.equal(&v2), "optimizer changed the result!");

    println!("result (both): {v1}");
    println!("generic ops:   {unopt_time:?}");
    println!("unsafe ops:    {opt_time:?}");
    println!(
        "speedup:       {:.0}%",
        (unopt_time.as_secs_f64() / opt_time.as_secs_f64() - 1.0) * 100.0
    );

    // the decision log explains *where* that speedup comes from: every
    // applied rewrite with its rule and source span, every near-miss
    // with the reason specialization was blocked, and the executed
    // generic-vs-specialized opcode mix
    println!("\n== decision log (instrumented run) ==");
    let fresh = Lagoon::new();
    fresh.add_module("opt", &format!("#lang typed/lagoon\n{KERNEL}"));
    let (_, report) = fresh.run_with_stats("opt", EngineKind::Vm)?;
    for r in &report.rewrites {
        println!(
            "  applied   {:<14} {} -> {}  at {}",
            r.family, r.op, r.rule, r.span
        );
    }
    for n in &report.near_misses {
        println!(
            "  near-miss {:<14} {}  at {}: {}",
            n.family, n.op, n.span, n.reason
        );
    }
    println!(
        "  opcode mix: {} generic, {} specialized ({} total)",
        report.generic_ops(),
        report.specialized_ops(),
        report.total_ops()
    );
    Ok(())
}
