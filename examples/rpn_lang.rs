//! A reverse-Polish-notation `#lang`, implemented entirely in hosted
//! Lagoon code — no Rust. The language's `#%module-begin` receives every
//! top-level form and a phase-1 helper converts each postfix sequence to
//! ordinary prefix code *at compile time*. This is the paper's thesis in
//! miniature: complete control over a module's semantics, as a library.
//!
//! Run with: `cargo run --example rpn_lang`

use lagoon::{EngineKind, Lagoon};

const RPN_LANGUAGE: &str = r#"#lang lagoon
(begin-for-syntax
  (define (rpn-convert items stack)
    (if (null? items)
        (car stack)
        (let ([item (car items)])
          (if (number? (syntax->datum item))
              (rpn-convert (cdr items) (cons item stack))
              (rpn-convert (cdr items)
                           (cons (datum->syntax item
                                   (list item (cadr stack) (car stack)))
                                 (cddr stack))))))))
(define-syntax (#%module-begin stx)
  (syntax-parse stx
    [(_ expr ...)
     #`(#%plain-module-begin
        #,@(map (lambda (e)
                  #`(displayln #,(rpn-convert (syntax->list e) '())))
                (syntax->list #'(expr ...))))]))
(provide #%module-begin)
"#;

fn main() -> Result<(), lagoon::RtError> {
    let lagoon = Lagoon::new();
    lagoon.add_module("rpn", RPN_LANGUAGE);
    lagoon.add_module(
        "calc",
        "#lang rpn
(3 4 + 2 *)
(10 2 -)
(2.0 10.0 * 1.0 +)
",
    );
    let (_, output) = lagoon.run_capturing("calc", EngineKind::Vm)?;
    print!("{output}");
    assert_eq!(output, "14\n8\n21.0\n");
    println!("-- a complete postfix language, defined in ~20 lines of hosted code");
    Ok(())
}
