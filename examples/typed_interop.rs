//! Safe cross-module integration (paper §6): typed modules import untyped
//! libraries behind generated contracts, and export their bindings to
//! untyped clients behind defensive wrappers — while typed→typed links
//! skip the checks entirely.
//!
//! Run with: `cargo run --example typed_interop`

use lagoon::{EngineKind, Kind, Lagoon};

fn main() -> Result<(), lagoon::RtError> {
    let lagoon = Lagoon::new();

    // an untyped library (standing in for the paper's file/md5)
    lagoon.add_module(
        "file/md5",
        r#"#lang lagoon
(define (md5 bytes)
  (foldl (lambda (b acc) (modulo (* (+ acc b) 16777619) 4294967296))
         2166136261 bytes))
(provide md5)
"#,
    );

    // a typed module importing it with a declared type (§6.1)
    lagoon.add_module(
        "hasher",
        r#"#lang typed/lagoon
(require/typed file/md5 [md5 ((Listof Integer) -> Integer)])
(: hash-string : String -> Integer)
(define (hash-string s) (md5 (string->bytes s)))
(provide hash-string)
"#,
    );
    let v = lagoon.run("hasher", EngineKind::Vm)?;
    let _ = v;
    let h = lagoon.exported("hasher", "hash-string", EngineKind::Vm)?;
    println!("typed module exports a contracted procedure: {h}");

    // an untyped client using the typed export safely…
    lagoon.add_module(
        "good-client",
        r#"#lang lagoon
(require hasher)
(hash-string "hello world")
"#,
    );
    println!(
        "untyped client, safe use: {}",
        lagoon.run("good-client", EngineKind::Vm)?
    );

    // …and unsafely: the generated contract catches it and blames the
    // untyped side (§6.2)
    lagoon.add_module(
        "bad-client",
        r#"#lang lagoon
(require hasher)
(hash-string 42)
"#,
    );
    match lagoon.run("bad-client", EngineKind::Vm) {
        Err(e) => {
            assert!(matches!(e.kind, Kind::Contract { .. }));
            println!("unsafe use caught: {e}");
        }
        Ok(v) => unreachable!("contract not enforced: {v}"),
    }

    // a lying untyped library is blamed, not the typed module (§6.1)
    lagoon.add_module(
        "liar",
        "#lang lagoon\n(define (f x) \"not an integer\")\n(provide f)\n",
    );
    lagoon.add_module(
        "trusting",
        r#"#lang typed/lagoon
(require/typed liar [f (Integer -> Integer)])
(f 1)
"#,
    );
    match lagoon.run("trusting", EngineKind::Vm) {
        Err(e) => {
            match &e.kind {
                Kind::Contract { blame } => assert_eq!(blame.as_str(), "liar"),
                k => unreachable!("wrong error kind {k:?}"),
            }
            println!("lying library blamed: {e}");
        }
        Ok(v) => unreachable!("contract not enforced: {v}"),
    }
    Ok(())
}
