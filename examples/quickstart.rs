//! Quickstart: embed Lagoon, run untyped and typed modules, define a
//! hygienic macro, and watch a type error get caught at compile time.
//!
//! Run with: `cargo run --example quickstart`

use lagoon::{EngineKind, Lagoon};

fn main() -> Result<(), lagoon::RtError> {
    let lagoon = Lagoon::new();

    // 1. a plain untyped module
    lagoon.add_module(
        "hello",
        r#"#lang lagoon
(define (greet name) (string-append "hello, " name))
(displayln (greet "world"))
(* 6 7)
"#,
    );
    let v = lagoon.run("hello", EngineKind::Vm)?;
    println!("hello returned {v}");

    // 2. a hygienic macro: the classic swap! — its temporary never
    //    captures the user's variables, even one named `tmp`
    lagoon.add_module(
        "macros",
        r#"#lang lagoon
(define-syntax swap!
  (syntax-rules ()
    [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
(define tmp 1)
(define other 2)
(swap! tmp other)
(list tmp other)
"#,
    );
    println!("after swap!: {}", lagoon.run("macros", EngineKind::Vm)?);

    // 3. the typed sister language — same runtime, static checking
    lagoon.add_module(
        "typed",
        r#"#lang typed/lagoon
(: fib : Integer -> Integer)
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 20)
"#,
    );
    println!("typed fib 20 = {}", lagoon.run("typed", EngineKind::Vm)?);

    // 4. type errors are compile-time errors (the paper's §4.1 example)
    lagoon.add_module("oops", "#lang typed/lagoon\n(define: w : Integer 3.7)\n");
    match lagoon.run("oops", EngineKind::Vm) {
        Err(e) => println!("as expected: {e}"),
        Ok(v) => unreachable!("type error not caught: {v}"),
    }

    // 5. both engines agree
    let vm = lagoon.run("typed", EngineKind::Vm)?;
    let interp = lagoon.run("typed", EngineKind::Interp)?;
    assert!(vm.equal(&interp));
    println!("interp and vm agree: {vm}");
    Ok(())
}
