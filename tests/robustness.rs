//! Hostile-input robustness: runaway macros, non-terminating compile-time
//! code, deep recursion, malformed specs, and a seeded fuzz sweep — every
//! one must surface as a structured [`RtError`] (never a panic, hang, or
//! host stack overflow), and budget failures must say which budget died.
//!
//! The fuzz sweep runs `LAGOON_FUZZ_N` inputs when that variable is set
//! (CI sets 10000 on a release build); the default is sized for debug
//! test runs.

use std::time::Duration;

use lagoon::diag::gen::SplitMix64;
use lagoon::diag::limits;
use lagoon::{EngineKind, FaultPlan, Kind, Lagoon, Limits, RtError};

/// Small budgets so hostile tests fail fast even in debug builds.
fn strict() -> Limits {
    Limits {
        max_expansion_steps: 20_000,
        max_expansion_depth: 100,
        max_phase1_steps: 200_000,
        max_vm_steps: 1_000_000,
        max_stack_depth: 500,
        timeout: Some(Duration::from_secs(10)),
    }
}

fn run_limited(src: &str, limits: Limits, engine: EngineKind) -> Result<lagoon::Value, RtError> {
    let lagoon = Lagoon::new();
    lagoon.set_limits(limits);
    lagoon.add_module("hostile", src);
    let result = lagoon.run("hostile", engine);
    lagoon.set_limits(Limits::default());
    result
}

fn assert_exhausted(result: Result<lagoon::Value, RtError>, budget: &str) {
    match result {
        Err(e) => match e.kind {
            Kind::ResourceExhausted { budget: b } => {
                assert_eq!(b, budget, "wrong budget: {e}")
            }
            _ => panic!("expected {budget} exhaustion, got: {e}"),
        },
        Ok(v) => panic!("expected {budget} exhaustion, got value {v}"),
    }
}

#[test]
fn runaway_self_expanding_macro_is_cut_off() {
    // (loop) expands to (loop loop) expands to ... forever, growing as it
    // goes; the expansion-step budget has to end it.
    let src = "#lang lagoon
        (define-syntax loop
          (syntax-rules () [(_ a ...) (loop a ... a ...)]))
        (loop x)";
    let result = run_limited(src, strict(), EngineKind::Vm);
    let e = result.expect_err("runaway macro must not expand to completion");
    assert!(e.is_resource_exhausted(), "got: {e}");
    assert!(e.span.is_some(), "budget diagnostics should carry a span");
}

#[test]
fn deeply_nested_macro_recursion_hits_depth_budget() {
    // each step expands to a use of itself nested one argument deeper:
    // no growth in width, so the depth budget is the one that trips
    let src = "#lang lagoon
        (define-syntax down
          (syntax-rules () [(_ e) (+ 1 (down e))]))
        (down x)";
    let result = run_limited(src, strict(), EngineKind::Vm);
    assert_exhausted(result, "expansion-depth");
}

#[test]
fn nonterminating_begin_for_syntax_is_cut_off() {
    let src = "#lang lagoon
        (begin-for-syntax
          (define (spin n) (spin (+ n 1)))
          (spin 0))";
    let result = run_limited(src, strict(), EngineKind::Vm);
    assert_exhausted(result, "phase1-steps");
}

#[test]
fn nonterminating_loop_hits_vm_step_budget() {
    let src = "#lang lagoon
        (define (spin) (spin))
        (spin)";
    assert_exhausted(run_limited(src, strict(), EngineKind::Vm), "vm-steps");
    assert_exhausted(run_limited(src, strict(), EngineKind::Interp), "vm-steps");
}

#[test]
fn deep_non_tail_recursion_reports_stack_depth() {
    // non-tail recursion 100k deep would kill the host stack if frames
    // lived there; both engines must report the stack-depth budget instead
    let src = "#lang lagoon
        (define (count n) (if (= n 0) 0 (+ 1 (count (- n 1)))))
        (count 100000)";
    assert_exhausted(run_limited(src, strict(), EngineKind::Vm), "stack-depth");
    assert_exhausted(
        run_limited(src, strict(), EngineKind::Interp),
        "stack-depth",
    );
}

#[test]
fn deep_recursion_within_budget_still_works() {
    let src = "#lang lagoon
        (define (count n) (if (= n 0) 0 (+ 1 (count (- n 1)))))
        (count 300)";
    let v = run_limited(src, strict(), EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "300");
}

#[test]
fn wall_clock_deadline_fires() {
    let src = "#lang lagoon
        (define (spin) (spin))
        (spin)";
    let limits = Limits {
        timeout: Some(Duration::from_millis(20)),
        ..Limits::default()
    };
    assert_exhausted(run_limited(src, limits, EngineKind::Vm), "deadline");
}

#[test]
fn malformed_require_is_a_syntax_error() {
    for src in [
        "#lang lagoon\n(require 42)",
        "#lang lagoon\n(require (rename))",
        "#lang lagoon\n(require no-such-module)",
    ] {
        let e = run_limited(src, strict(), EngineKind::Vm)
            .expect_err("malformed require must not succeed");
        assert!(
            !matches!(e.kind, Kind::Internal | Kind::ResourceExhausted { .. }),
            "require error leaked as {e}"
        );
    }
}

#[test]
fn malformed_typed_specs_are_type_or_syntax_errors() {
    for src in [
        "#lang typed/lagoon\n(define: x : NoSuchType 1)\nx",
        "#lang typed/lagoon\n(define: x : Integer \"str\")\nx",
        "#lang typed/lagoon\n(define: x :)",
        "#lang typed/lagoon\n(: f (-> ))",
        "#lang typed/lagoon\n(lambda: ([x : ]) x)",
        // found by the fuzz sweep: intrinsic rules indexed `args` directly,
        // so under-applied prelude functions panicked the typechecker
        "#lang typed/lagoon\n((map))",
        "#lang typed/lagoon\n(foldl +)",
    ] {
        let e = run_limited(src, strict(), EngineKind::Vm)
            .expect_err("malformed typed form must not succeed");
        assert!(
            !matches!(e.kind, Kind::Internal | Kind::ResourceExhausted { .. }),
            "typed-spec error leaked as {e}: {src}"
        );
    }
}

#[test]
fn typed_module_reports_every_top_level_type_error() {
    // two independent bad definitions: the checker must keep going after
    // the first and fold both into one diagnostic
    let src = "#lang typed/lagoon
        (define: a : Integer \"one\")
        (define: b : String 2)
        (+ 1 1)";
    let e = run_limited(src, strict(), EngineKind::Vm).expect_err("ill-typed module must not run");
    let msg = e.to_string();
    assert!(msg.contains("2 type errors"), "missing error count: {msg}");
    assert!(msg.contains("\"one\""), "first error dropped: {msg}");
    assert!(msg.contains("String"), "second error dropped: {msg}");
    assert!(
        e.span.is_some(),
        "aggregated error should keep the first span"
    );
}

#[test]
fn unterminated_literals_are_read_errors_with_spans() {
    for src in [
        "#lang lagoon\n\"never closed",
        "#lang lagoon\n(+ 1 2",
        "#lang lagoon\n#(1 2",
        "#lang lagoon\n(a . )",
        "#lang lagoon\n#\\",
    ] {
        let e =
            run_limited(src, strict(), EngineKind::Vm).expect_err("unreadable module must not run");
        assert!(
            !matches!(e.kind, Kind::Internal | Kind::ResourceExhausted { .. }),
            "read error leaked as {e}: {src:?}"
        );
        assert!(e.span.is_some(), "read errors should carry a span: {e}");
    }
}

#[test]
fn injected_faults_fail_cleanly() {
    // a healthy program run under a sweep of seeded fault plans: each run
    // either completes (fault armed past the program's horizon) or dies
    // with the injected-fault diagnostic — nothing else
    let src = "#lang lagoon
        (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
        (define-syntax twice
          (syntax-rules () [(_ e) (+ e e)]))
        (twice (fib 12))";
    let lagoon = Lagoon::new();
    lagoon.add_module("faulty", src);
    for seed in 0..40 {
        limits::install_faults(FaultPlan::from_seed(seed, 50_000));
        for engine in [EngineKind::Vm, EngineKind::Interp] {
            match lagoon.run("faulty", engine) {
                Ok(v) => assert_eq!(v.to_string(), "288"),
                Err(e) => match e.kind {
                    Kind::ResourceExhausted { budget } => {
                        assert_eq!(budget, "injected-fault", "seed {seed}: {e}")
                    }
                    _ => panic!("seed {seed}: fault surfaced as {e}"),
                },
            }
        }
    }
    limits::clear_faults();
}

#[test]
fn error_mid_fused_float_sequence_leaves_no_residue() {
    // `(unsafe-fl+ 1.5 (car 7))` compiles to a fused float sequence: 1.5
    // is already sitting on the machine's float stack when `(car 7)`
    // raises. The unwind must leave the machine clean — the next
    // evaluation on the SAME instance (which reuses the pooled stack
    // buffers) must see an empty float stack, not a stale 1.5.
    let lagoon = Lagoon::new();
    for (bad, probe, want) in [
        // error in the second operand, first already unboxed
        (
            "#lang lagoon\n(unsafe-fl+ 1.5 (car 7))\n",
            "#lang lagoon\n(unsafe-fl+ 0.25 0.25)\n",
            "0.5",
        ),
        // error inside a *call* made while two fused operands are
        // suspended on the float stack (the frame-balance edge case)
        (
            "#lang lagoon
             (define (boom x) (car x))
             (unsafe-fl* 2.0 (unsafe-fl+ 3.0 (boom 7)))\n",
            "#lang lagoon\n(unsafe-fl* 2.0 (unsafe-fl+ 3.0 4.0))\n",
            "14.0",
        ),
        // error deep in a fused loop body after many clean iterations
        (
            "#lang lagoon
             (define (go i acc)
               (if (= i 0) (car acc) (go (- i 1) (unsafe-fl+ acc 1.0))))
             (unsafe-fl- 100.0 (go 10 0.0))\n",
            "#lang lagoon\n(unsafe-fl- 100.0 1.0)\n",
            "99.0",
        ),
    ] {
        lagoon.add_module("bad", bad);
        lagoon.add_module("probe", probe);
        for engine in [EngineKind::Vm, EngineKind::Interp] {
            let e = lagoon
                .run("bad", engine)
                .expect_err("mid-fusion error must surface");
            assert!(
                !matches!(e.kind, Kind::Internal),
                "mid-fusion error leaked as internal on {engine:?}: {e}"
            );
            // debug builds also assert per-frame float-stack balance
            // inside the VM; a stale float would trip that first
            let v = lagoon.run("probe", engine).unwrap_or_else(|e| {
                panic!("machine polluted after mid-fusion error ({engine:?}): {e}")
            });
            assert_eq!(v.to_string(), want, "stale float residue on {engine:?}");
        }
    }
}

#[test]
fn fuzz_sweep_never_panics() {
    let n: u64 = std::env::var("LAGOON_FUZZ_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) { 400 } else { 2_000 });
    // one world for the whole sweep: add_module invalidates the previous
    // compilation, and reusing the instance exercises cross-run state
    let lagoon = Lagoon::new();
    lagoon.set_limits(Limits {
        max_expansion_steps: 20_000,
        max_expansion_depth: 100,
        max_phase1_steps: 100_000,
        max_vm_steps: 200_000,
        max_stack_depth: 400,
        timeout: Some(Duration::from_secs(5)),
    });
    let mut rng = SplitMix64::new(0xbad5eed);
    let (mut ok, mut err) = (0u64, 0u64);
    for i in 0..n {
        let src = gen_input(&mut rng);
        let name = "fuzzed";
        lagoon.add_module(name, &src);
        let engine = if i % 2 == 0 {
            EngineKind::Vm
        } else {
            EngineKind::Interp
        };
        match lagoon.run(name, engine) {
            Ok(_) => ok += 1,
            Err(e) => {
                // a panic caught at the embedding boundary surfaces as
                // Kind::Internal — that counts as a failure here
                assert!(
                    !matches!(e.kind, Kind::Internal),
                    "input {i} (engine {engine:?}) hit an internal error: {e}\nsource:\n{src}"
                );
                err += 1;
            }
        }
    }
    lagoon.set_limits(Limits::default());
    // sanity: the generator must produce a healthy mix, or the sweep
    // proves nothing
    assert!(ok > 0, "no fuzz input ran to completion ({err} errors)");
    assert!(err > 0, "no fuzz input errored ({ok} ran clean)");
}

fn gen_input(rng: &mut SplitMix64) -> String {
    lagoon::diag::gen::gen_module(rng, 6, true)
}

#[test]
fn peephole_differential_sweep_matches_unfused_semantics() {
    use lagoon_bench::{all_benchmarks, Config};

    // normalizes process-global gensym counters (`f~123` → `f~`) so two
    // independent compilations of the same source compare equal
    fn normalize(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars().peekable();
        while let Some(c) = chars.next() {
            out.push(c);
            if c == '~' {
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    chars.next();
                }
            }
        }
        out
    }

    // one observation: value + captured output on success, or
    // (was-it-a-budget-death, message) on failure
    fn observe(
        src: &str,
        engine: EngineKind,
        limits: Limits,
        peephole: bool,
    ) -> Result<(String, String), (bool, String)> {
        lagoon::set_peephole(peephole);
        let lagoon = Lagoon::new();
        lagoon.set_limits(limits);
        lagoon.add_module("diff", src);
        let result = lagoon.run_capturing("diff", engine);
        lagoon.set_limits(Limits::default());
        lagoon::set_peephole(true);
        match result {
            Ok((v, out)) => Ok((normalize(&v.write_string()), normalize(&out))),
            Err(e) => Err((e.is_resource_exhausted(), normalize(&e.to_string()))),
        }
    }

    let mut sources: Vec<(String, Vec<EngineKind>, Limits)> = Vec::new();
    // seeded generator modules, on both engines
    let mut rng = SplitMix64::new(0xd1ff);
    let n = if cfg!(debug_assertions) { 120 } else { 400 };
    for _ in 0..n {
        sources.push((
            gen_input(&mut rng),
            vec![EngineKind::Vm, EngineKind::Interp],
            strict(),
        ));
    }
    // the benchmark programs (untyped and optimized-typed), on the VM
    for bench in all_benchmarks() {
        for config in [Config::Vm, Config::VmOpt] {
            sources.push((
                bench.source_for(config),
                vec![EngineKind::Vm],
                Limits::default(),
            ));
        }
    }
    let (mut compared, mut skipped) = (0u64, 0u64);
    for (src, engines, limits) in &sources {
        for engine in engines {
            let on = observe(src, *engine, *limits, true);
            let off = observe(src, *engine, *limits, false);
            match (on, off) {
                // fused code executes no more steps than unfused code, so
                // a budget death on either side need not reproduce on the
                // other; everything else must match exactly
                (Err((true, _)), _) | (_, Err((true, _))) => skipped += 1,
                (Ok(on), Ok(off)) => {
                    assert_eq!(on, off, "peephole changed value/output for:\n{src}");
                    compared += 1;
                }
                (Err((_, on)), Err((_, off))) => {
                    assert_eq!(on, off, "peephole changed the error for:\n{src}");
                    compared += 1;
                }
                (on, off) => {
                    panic!("peephole changed the outcome for:\n{src}\non:  {on:?}\noff: {off:?}")
                }
            }
        }
    }
    // sanity: the sweep must actually compare things, or it proves nothing
    assert!(
        compared > sources.len() as u64 / 2,
        "only {compared} comparisons ran ({skipped} skipped)"
    );
}

#[test]
fn interp_vs_vm_differential_sweep_agrees() {
    // the two engines share the runtime but nothing else — the VM runs
    // tagged value words over the pooled unified stack, the interpreter
    // walks the core tree. Any representation bug that changes observable
    // behaviour (truthiness, numeric equality, printing, error class)
    // shows up as divergence here.
    fn observe(
        lagoon: &Lagoon,
        src: &str,
        engine: EngineKind,
        limits: Limits,
    ) -> Result<(String, String), (bool, String)> {
        lagoon.set_limits(limits);
        lagoon.add_module("xdiff", src);
        let result = lagoon.run_capturing("xdiff", engine);
        lagoon.set_limits(Limits::default());
        match result {
            Ok((v, out)) => Ok((v.write_string(), out)),
            Err(e) => Err((e.is_resource_exhausted(), e.to_string())),
        }
    }

    let lagoon = Lagoon::new();
    let mut rng = SplitMix64::new(0xe2e2);
    let n = if cfg!(debug_assertions) { 150 } else { 500 };
    // fixed seeds covering the representation's edge classes, then the
    // generator sweep
    let corpus = [
        "#lang lagoon\n(list (eqv? 0.0 -0.0) (eqv? (/ 0.0 0.0) (/ 0.0 0.0)) (= 1 1.0))\n",
        "#lang lagoon\n(let ([v (vector 1 2.5 #\\c 'sym \"str\" '(1 . 2))]) (vector-ref v 1))\n",
        "#lang lagoon\n(+ 140737488355327 1)\n", // crosses the 48-bit immediate-int boundary
        "#lang lagoon\n(- -140737488355328 1)\n",
        "#lang lagoon\n(* 1073741824 1073741824)\n",
        "#lang lagoon\n(if 0.0 'float-is-truthy 'float-is-falsy)\n",
        "#lang lagoon\n(let loop ([i 0] [acc 0.0]) (if (= i 50) acc (loop (+ i 1) (unsafe-fl+ acc 0.5))))\n",
    ];
    let (mut compared, mut skipped) = (0u64, 0u64);
    for i in 0..(corpus.len() + n) {
        let src = corpus
            .get(i)
            .map(|s| (*s).to_string())
            .unwrap_or_else(|| gen_input(&mut rng));
        let vm = observe(&lagoon, &src, EngineKind::Vm, strict());
        let interp = observe(&lagoon, &src, EngineKind::Interp, strict());
        match (vm, interp) {
            // the engines count steps differently, so a budget death on
            // either side need not reproduce on the other
            (Err((true, _)), _) | (_, Err((true, _))) => skipped += 1,
            (Ok(vm), Ok(interp)) => {
                assert_eq!(vm, interp, "engines diverged on value/output for:\n{src}");
                compared += 1;
            }
            (Err(_), Err(_)) => compared += 1, // both err: class agreement is enough
            (vm, interp) => {
                panic!("engines diverged on outcome for:\n{src}\nvm: {vm:?}\ninterp: {interp:?}")
            }
        }
    }
    assert!(
        compared > (corpus.len() + n) as u64 / 2,
        "only {compared} comparisons ran ({skipped} skipped)"
    );
}

#[test]
fn compiled_store_codec_is_a_fixed_point() {
    // seeded generator → compile → encode → decode → re-encode must
    // reproduce the artifact bytes exactly (symbols, spans, consts,
    // bytecode, persisted declarations — everything survives the trip)
    let n: u64 = if cfg!(debug_assertions) { 150 } else { 600 };
    let mut rng = SplitMix64::new(0xc0dec);
    let lagoon = Lagoon::new();
    lagoon.set_limits(strict());
    let registry = lagoon.registry();
    let mut checked = 0u64;
    // a fixed corpus that always compiles, covering the value/form shapes
    // the generator only hits by luck, then the seeded sweep
    let corpus = [
        "#lang lagoon\n(define (f x) (* x 2.5)) (provide f) (f 4)\n",
        "#lang lagoon\n(define v (vector 1 \"two\" #\\3 'four)) (vector-ref v 0)\n",
        "#lang lagoon\n(define-values (q r) (values (quotient 7 2) (remainder 7 2))) (+ q r)\n",
        "#lang lagoon\n(let loop ([i 0] [acc '()]) (if (= i 3) acc (loop (+ i 1) (cons i acc))))\n",
        "#lang typed/lagoon\n(: inc : Integer -> Integer)\n(define (inc n) (+ n 1)) (provide inc) (inc 1)\n",
        "#lang lagoon\n(define c 2.0+3.0i) (+ c c)\n",
        "#lang lagoon\n`(1 ,(+ 1 1) ,@(list 3 4))\n",
    ];
    for i in 0..(corpus.len() as u64 + n) {
        let src = corpus
            .get(i as usize)
            .map(|s| (*s).to_string())
            .unwrap_or_else(|| lagoon::diag::gen::gen_module(&mut rng, 5, false));
        let name = format!("codec-{i}");
        lagoon.add_module(&name, &src);
        let Ok(compiled) = registry.compile(lagoon::Symbol::intern(&name)) else {
            continue; // generator output that doesn't compile is off-topic here
        };
        let deps: Vec<_> = compiled
            .requires
            .iter()
            .enumerate()
            .map(|(j, d)| (*d, j as u64))
            .collect();
        let Ok(bytes) = lagoon_core::store::encode(&compiled, 11, 22, &deps) else {
            continue; // uncacheable (e.g. exports a hosted macro)
        };
        // a name/tag/datum-preserving rehydrator (the shape the typed
        // language registers) so recipe exports make the round trip too
        let rehydrate = |tag: lagoon::Symbol, datum: &lagoon::Datum| {
            let name = match datum {
                lagoon::Datum::List(items) => items.first()?.as_symbol()?,
                _ => return None,
            };
            Some(lagoon_core::native_with_recipe(
                &name.as_str(),
                &tag.as_str(),
                datum.clone(),
                |_, stx, _| Ok(lagoon_core::Expanded::Surface(stx)),
            ))
        };
        let artifact = lagoon_core::store::decode(&bytes, &rehydrate)
            .unwrap_or_else(|e| panic!("fresh artifact must decode, got {e}\nsource:\n{src}"));
        let back = artifact.into_compiled();
        let bytes2 = lagoon_core::store::encode(&back, 11, 22, &deps)
            .unwrap_or_else(|e| panic!("decoded module must re-encode, got {e}\nsource:\n{src}"));
        assert_eq!(bytes, bytes2, "codec is not a fixed point for:\n{src}");
        checked += 1;
    }
    lagoon.set_limits(Limits::default());
    // the generator is deliberately adversarial, so most of its output
    // fails to compile; the fixed corpus plus its survivors must all
    // have made the round trip
    assert!(
        checked >= corpus.len() as u64 + n / 10,
        "only {checked} inputs reached the codec"
    );
}

#[test]
fn lagc_corruption_sweep_never_panics() {
    // random byte flips (and truncations) in on-disk artifacts must
    // surface as corrupt-artifact diagnostics followed by a clean
    // recompile — never a panic, never an internal error, and never a
    // silently different program result
    let n: u64 = std::env::var("LAGOON_FUZZ_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(|v: u64| v / 20)
        .unwrap_or(if cfg!(debug_assertions) { 60 } else { 200 });
    let dir = std::env::temp_dir().join(format!("lagoon-corrupt-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let lagoon = Lagoon::new();
    lagoon.set_cache_dir(Some(dir.clone()));
    lagoon.add_module(
        "base",
        "#lang lagoon\n(define (shout s) (string-append s \"!\"))\n(provide shout)\n",
    );
    lagoon.add_module("app", "#lang lagoon\n(require base)\n(shout \"hey\")\n");
    let expected = lagoon.run("app", EngineKind::Vm).unwrap().to_string();
    let mut rng = SplitMix64::new(0x1a6c);
    for i in 0..n {
        let victim = dir.join(if i % 2 == 0 { "base.lagc" } else { "app.lagc" });
        let mut bytes = std::fs::read(&victim).unwrap();
        if rng.chance(1, 4) {
            // truncate somewhere
            bytes.truncate(rng.below(bytes.len() as u64 + 1) as usize);
        } else {
            for _ in 0..=rng.below(3) {
                let at = rng.below(bytes.len().max(1) as u64) as usize;
                bytes[at] ^= (1 + rng.below(255)) as u8;
            }
        }
        std::fs::write(&victim, &bytes).unwrap();
        lagoon.registry().reset_compiled();
        match lagoon.run("app", EngineKind::Vm) {
            Ok(v) => assert_eq!(v.to_string(), expected, "iteration {i} changed the result"),
            Err(e) => panic!(
                "iteration {i}: corruption must recompile, not fail (kind {:?}): {e}",
                e.kind
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
