//! End-to-end tests for the structured tracer: a traced run of a typed
//! module yields a span tree covering the whole pipeline, the nesting
//! invariants hold, source locations survive to the spans, and the
//! Chrome trace-event rendering round-trips through a JSON parser.

use lagoon::diag::trace::{Trace, TraceSpan};
use lagoon::server::json::{self, Json};
use lagoon::{EngineKind, Lagoon};
use std::collections::HashMap;

const TYPED_PROGRAM: &str = "#lang typed/lagoon\n\
    (: square : Integer -> Integer)\n\
    (define (square x) (* x x))\n\
    (square 7)\n";

fn traced_run(cache_dir: Option<std::path::PathBuf>) -> Trace {
    let lagoon = Lagoon::new();
    lagoon.set_cache_dir(cache_dir);
    lagoon.add_module("traced-main", TYPED_PROGRAM);
    let (result, trace) = lagoon.run_traced("traced-main", EngineKind::Vm);
    assert_eq!(result.expect("program runs").to_string(), "49");
    trace
}

/// Every span's interval must sit inside its parent's, and parents must
/// exist; returns the id → span map for further checks.
fn check_nesting(trace: &Trace) -> HashMap<u64, &TraceSpan> {
    let by_id: HashMap<u64, &TraceSpan> = trace.spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), trace.spans.len(), "duplicate span ids");
    for span in &trace.spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        // With no ring-buffer overflow the parent is always present.
        let parent = by_id
            .get(&parent_id)
            .unwrap_or_else(|| panic!("span {} has unknown parent {parent_id}", span.id));
        assert!(parent_id < span.id, "parents are allocated before children");
        assert!(
            span.start_us >= parent.start_us
                && span.start_us + span.dur_us <= parent.start_us + parent.dur_us,
            "span {} [{}, {}] escapes parent {} [{}, {}]",
            span.id,
            span.start_us,
            span.start_us + span.dur_us,
            parent.id,
            parent.start_us,
            parent.start_us + parent.dur_us,
        );
    }
    by_id
}

#[test]
fn traced_run_covers_the_pipeline_and_nests() {
    let trace = traced_run(None);
    assert_eq!(trace.dropped, 0);
    check_nesting(&trace);

    // the full pipeline appears: reader, expander, typechecker,
    // optimizer, compiler, and the run itself
    for phase in ["read", "expand", "typecheck", "optimize", "compile", "run"] {
        assert!(
            trace.spans.iter().any(|s| s.phase == phase),
            "no {phase} span in {:?}",
            trace
                .spans
                .iter()
                .map(|s| (s.phase, s.label.as_str()))
                .collect::<Vec<_>>()
        );
    }
    // typecheck and optimize nest inside the module's expand span
    let expand = trace
        .spans
        .iter()
        .find(|s| s.phase == "expand" && s.label == "traced-main")
        .expect("expand span for the main module");
    for phase in ["typecheck", "optimize"] {
        let span = trace.spans.iter().find(|s| s.phase == phase).expect(phase);
        assert_eq!(span.parent, Some(expand.id), "{phase} outside expand");
    }
    // per-form expander spans carry source file:line attribution (the
    // typed lang's annotation rewrite yields one synthetic-span form, so
    // look for a "square" form that kept its surface location)
    let form = trace
        .spans
        .iter()
        .find(|s| s.phase == "form" && s.label == "square" && s.src.is_some())
        .expect("a source-attributed form span for square");
    let src = form.src.expect("form span has a source location");
    assert_eq!(src.source.as_str(), "traced-main");
    assert!(src.line > 0);
}

#[test]
fn traced_run_annotates_store_hits() {
    let dir = std::env::temp_dir().join(format!("lagoon-trace-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // first run populates the store (miss), second loads from it (hit);
    // both outcomes surface as "store" notes on the pipeline spans
    let miss = traced_run(Some(dir.clone()));
    let hit = traced_run(Some(dir.clone()));
    let _ = std::fs::remove_dir_all(&dir);
    // store outcomes appear as notes on open pipeline spans, or as
    // standalone zero-duration "store" spans when the store reports
    // after the phase timers have closed
    let note_values = |t: &Trace| -> Vec<String> {
        t.spans
            .iter()
            .flat_map(|s| s.notes.iter())
            .filter(|(k, _)| *k == "store")
            .map(|(_, v)| v.clone())
            .chain(
                t.spans
                    .iter()
                    .filter(|s| s.phase == "store")
                    .map(|s| s.label.clone()),
            )
            .collect()
    };
    assert!(
        note_values(&miss).iter().any(|v| v.contains("miss")),
        "cold run recorded no store miss: {:?}",
        note_values(&miss)
    );
    assert!(
        note_values(&hit).iter().any(|v| v.contains("hit")),
        "warm run recorded no store hit: {:?}",
        note_values(&hit)
    );
}

#[test]
fn chrome_trace_json_round_trips() {
    let trace = traced_run(None);
    let span_count = trace.spans.len();
    let rendered = lagoon::diag::trace::chrome_trace_json(
        &[("main".to_string(), trace)],
        &[(
            "vmProfile",
            "[{\"fn\":\"square\",\"chunks\":1}]".to_string(),
        )],
    );
    let parsed = json::parse(&rendered).expect("chrome trace JSON parses");

    let events = match parsed.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    // one metadata event naming the track plus one "X" event per span
    assert_eq!(events.len(), 1 + span_count);
    let meta = &events[0];
    assert_eq!(meta.get("ph").and_then(Json::as_str), Some("M"));
    assert_eq!(
        meta.get("args")
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str),
        Some("main")
    );
    let mut seen_ids = std::collections::HashSet::new();
    for event in &events[1..] {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert!(event.get("ts").and_then(Json::as_u64).is_some());
        assert!(event.get("dur").and_then(Json::as_u64).is_some());
        assert!(event.get("name").and_then(Json::as_str).is_some());
        let id = event
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_u64)
            .expect("event carries its span id");
        seen_ids.insert(id);
    }
    // parent references resolve within the document
    for event in &events[1..] {
        if let Some(parent) = event
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_u64)
        {
            assert!(seen_ids.contains(&parent), "dangling parent {parent}");
        }
    }
    // extra top-level fields ride along for tooling
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    assert_eq!(parsed.get("droppedSpans").and_then(Json::as_u64), Some(0));
    assert!(parsed.get("vmProfile").is_some());
}
