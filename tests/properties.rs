//! Property-based tests over the whole stack.
//!
//! The headline property is the paper's implicit optimizer-correctness
//! claim: for any well-typed program, the optimized and unoptimized
//! builds compute the same value. We generate random well-typed
//! arithmetic programs, run them as `#lang lagoon`, `#lang typed/no-opt`,
//! and `#lang typed/lagoon` on both engines, and require agreement.
//!
//! The generators are driven by a fixed-seed splitmix64 stream rather
//! than a property-testing framework, so the workspace stays
//! dependency-free and every failure reproduces exactly.

use lagoon::{Datum, EngineKind, Lagoon};

/// Deterministic splitmix64 stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

// ---------------------------------------------------------------------
// reader / printer round trip
// ---------------------------------------------------------------------

fn arb_datum(rng: &mut Rng, depth: usize) -> Datum {
    if depth > 0 && rng.below(3) == 0 {
        let len = rng.below(5);
        let items = (0..len).map(|_| arb_datum(rng, depth - 1)).collect();
        return if rng.below(2) == 0 {
            Datum::List(items)
        } else {
            Datum::Vector(items)
        };
    }
    match rng.below(7) {
        0 => Datum::Int(rng.int(-1000, 1000)),
        1 => Datum::Float(rng.int(-1000, 1000) as f64 / 8.0),
        2 => Datum::Bool(rng.next().is_multiple_of(2)),
        3 => {
            let len = 1 + rng.below(8);
            let first = (b'a' + rng.below(26) as u8) as char;
            let rest: String = (0..len)
                .map(|_| {
                    let cs = b"abcdefghijklmnopqrstuvwxyz0123456789-";
                    cs[rng.below(cs.len())] as char
                })
                .collect();
            Datum::sym(&format!("{first}{rest}"))
        }
        4 => {
            let len = rng.below(10);
            let s: String = (0..len)
                .map(|_| (b' ' + rng.below(95) as u8) as char)
                .collect();
            Datum::string(&s)
        }
        5 => Datum::Char(['a', 'Z', '0', '\n', ' '][rng.below(5)]),
        _ => Datum::Complex(rng.int(-100, 100) as f64, rng.int(-100, 100) as f64 / 4.0),
    }
}

#[test]
fn reader_printer_round_trip() {
    let mut rng = Rng(0x5EED);
    for _ in 0..128 {
        let d = arb_datum(&mut rng, 3);
        let printed = d.to_string();
        let re_read = lagoon_syntax::read_datum(&printed, "<prop>").unwrap();
        assert_eq!(re_read, d);
    }
}

// ---------------------------------------------------------------------
// well-typed expression generator
// ---------------------------------------------------------------------

/// A generated arithmetic expression together with its static type
/// (true = Float, false = Integer).
#[derive(Clone, Debug)]
struct Expr {
    src: String,
    is_float: bool,
}

fn arb_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(4) {
            0 => Expr {
                src: rng.int(1, 50).to_string(),
                is_float: false,
            },
            1 => Expr {
                src: format!("{}.5", rng.int(1, 50)),
                is_float: true,
            },
            2 => Expr {
                src: "x".into(),
                is_float: false,
            },
            _ => Expr {
                src: "y".into(),
                is_float: true,
            },
        };
    }
    match rng.below(4) {
        // binary arithmetic: the result is float if either side is
        0 => {
            let op = ["+", "-", "*"][rng.below(3)];
            let a = arb_expr(rng, depth - 1);
            let b = arb_expr(rng, depth - 1);
            Expr {
                src: format!("({op} {} {})", a.src, b.src),
                is_float: a.is_float || b.is_float,
            }
        }
        // float-only ops (operand coerced)
        1 => {
            let a = arb_expr(rng, depth - 1);
            Expr {
                src: format!("(sqrt (exact->inexact (abs {})))", a.src),
                is_float: true,
            }
        }
        // comparisons guarded inside if
        2 => {
            let c = arb_expr(rng, depth - 1);
            let t = arb_expr(rng, depth - 1);
            let e = arb_expr(rng, depth - 1);
            // branches must have the same type for simplicity: coerce
            let (ts, es) = if t.is_float == e.is_float {
                (t.src.clone(), e.src.clone())
            } else {
                (
                    format!("(exact->inexact {})", t.src),
                    format!("(exact->inexact {})", e.src),
                )
            };
            Expr {
                src: format!("(if (< (exact->inexact {}) 25.0) {ts} {es})", c.src),
                is_float: t.is_float || e.is_float,
            }
        }
        // min/max keep both real
        _ => {
            let a = arb_expr(rng, depth - 1);
            let b = arb_expr(rng, depth - 1);
            Expr {
                src: format!(
                    "(min (exact->inexact {}) (exact->inexact {}))",
                    a.src, b.src
                ),
                is_float: true,
            }
        }
    }
}

/// The optimizer-correctness property: untyped, typed-unoptimized,
/// and typed-optimized builds of the same program agree on both
/// engines.
#[test]
fn optimizer_preserves_semantics() {
    let mut rng = Rng(0x0B51D1A);
    for _ in 0..48 {
        let e = arb_expr(&mut rng, 4);
        let ret = if e.is_float { "Float" } else { "Integer" };
        let typed_body = format!(
            "(: f : Integer Float -> {ret})\n(define (f x y) {})\n(f 7 3.5)",
            e.src
        );
        let untyped_body = format!("(define (f x y) {})\n(f 7 3.5)", e.src);

        let lagoon = Lagoon::new();
        lagoon.add_module("u", &format!("#lang lagoon\n{untyped_body}\n"));
        lagoon.add_module("t", &format!("#lang typed/lagoon\n{typed_body}\n"));
        lagoon.add_module("n", &format!("#lang typed/no-opt\n{typed_body}\n"));

        let vu = lagoon.run("u", EngineKind::Vm).unwrap();
        let vt = lagoon.run("t", EngineKind::Vm).unwrap();
        let vn = lagoon.run("n", EngineKind::Vm).unwrap();
        let vi = lagoon.run("t", EngineKind::Interp).unwrap();

        assert!(vu.equal(&vt), "untyped={} typed={} src={}", vu, vt, e.src);
        assert!(vt.equal(&vn), "typed={} no-opt={} src={}", vt, vn, e.src);
        assert!(vt.equal(&vi), "vm={} interp={} src={}", vt, vi, e.src);
    }
}

/// Hygiene under adversarial user variable names: a macro-introduced
/// temporary never captures user bindings, whatever they're called.
#[test]
fn hygiene_survives_any_names() {
    let mut rng = Rng(0x416E);
    let mut tried = 0;
    while tried < 32 {
        let len = 1 + rng.below(6);
        let name: String = (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        if matches!(
            name.as_str(),
            "if" | "let"
                | "set"
                | "define"
                | "swap"
                | "a"
                | "b"
                | "tmp"
                | "t"
                | "x"
                | "y"
                | "begin"
                | "quote"
                | "lambda"
                | "cond"
                | "case"
                | "when"
                | "unless"
                | "and"
                | "or"
                | "else"
                | "map"
                | "list"
                | "cons"
                | "car"
                | "cdr"
                | "not"
                | "void"
                | "min"
                | "max"
                | "abs"
                | "sqrt"
                | "sin"
                | "cos"
                | "tan"
                | "log"
                | "exp"
                | "sum"
                | "iota"
                | "range"
                | "rest"
                | "first"
                | "last"
                | "error"
                | "sub"
        ) {
            continue;
        }
        tried += 1;
        let lagoon = Lagoon::new();
        lagoon.add_module(
            "hygiene",
            &format!(
                "#lang lagoon
(define-syntax swap!
  (syntax-rules ()
    [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
(define tmp 1)
(define {name} 2)
(swap! tmp {name})
(list tmp {name})"
            ),
        );
        let v = lagoon.run("hygiene", EngineKind::Vm).unwrap();
        assert_eq!(v.to_string(), "(2 1)", "name: {name}");
    }
}

/// Contracts are complete mediators: for any generated integer value,
/// a typed (Integer -> Integer) export accepts integers from untyped
/// clients and rejects every non-integer first-order value.
#[test]
fn contract_boundary_is_sound() {
    let mut rng = Rng(0xC0117AC7);
    for _ in 0..32 {
        let n = rng.int(-1000, 1000);
        let bad_len = rng.below(9);
        let bad: String = (0..bad_len)
            .map(|_| {
                let cs = b"abcdefghijklmnopqrstuvwxyz ";
                cs[rng.below(cs.len())] as char
            })
            .collect();
        let lagoon = Lagoon::new();
        lagoon.add_module(
            "server",
            "#lang typed/lagoon
             (: inc : Integer -> Integer)
             (define (inc x) (+ x 1))
             (provide inc)",
        );
        lagoon.add_module(
            "ok",
            &format!("#lang lagoon\n(require server)\n(inc {n})\n"),
        );
        let v = lagoon.run("ok", EngineKind::Vm).unwrap();
        assert_eq!(v.to_string(), (n + 1).to_string());

        lagoon.add_module(
            "bad",
            &format!("#lang lagoon\n(require server)\n(inc {:?})\n", bad),
        );
        let err = lagoon.run("bad", EngineKind::Vm).unwrap_err();
        let is_contract = matches!(err.kind, lagoon::Kind::Contract { .. });
        assert!(is_contract, "expected contract violation, got {err}");
    }
}
