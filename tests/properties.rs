//! Property-based tests over the whole stack.
//!
//! The headline property is the paper's implicit optimizer-correctness
//! claim: for any well-typed program, the optimized and unoptimized
//! builds compute the same value. We generate random well-typed
//! arithmetic programs, run them as `#lang lagoon`, `#lang typed/no-opt`,
//! and `#lang typed/lagoon` on both engines, and require agreement.

use lagoon::{Datum, EngineKind, Lagoon};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// reader / printer round trip
// ---------------------------------------------------------------------

fn arb_datum() -> impl Strategy<Value = Datum> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Datum::Int),
        (-1000i64..1000).prop_map(|n| Datum::Float(n as f64 / 8.0)),
        any::<bool>().prop_map(Datum::Bool),
        "[a-z][a-z0-9-]{0,8}".prop_map(|s| Datum::sym(&s)),
        "[ -~]{0,10}".prop_map(|s| Datum::string(&s)),
        prop_oneof![Just('a'), Just('Z'), Just('0'), Just('\n'), Just(' ')]
            .prop_map(Datum::Char),
        ((-100i64..100), (-100i64..100))
            .prop_map(|(re, im)| Datum::Complex(re as f64, im as f64 / 4.0)),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Datum::List),
            prop::collection::vec(inner, 0..4).prop_map(Datum::Vector),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reader_printer_round_trip(d in arb_datum()) {
        let printed = d.to_string();
        let re_read = lagoon_syntax::read_datum(&printed, "<prop>").unwrap();
        prop_assert_eq!(re_read, d);
    }
}

// ---------------------------------------------------------------------
// well-typed expression generator
// ---------------------------------------------------------------------

/// A generated arithmetic expression together with its static type
/// (true = Float, false = Integer).
#[derive(Clone, Debug)]
struct Expr {
    src: String,
    is_float: bool,
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (1i64..50).prop_map(|n| Expr { src: n.to_string(), is_float: false }),
        (1i64..50).prop_map(|n| Expr {
            src: format!("{n}.5"),
            is_float: true
        }),
        Just(Expr { src: "x".into(), is_float: false }),
        Just(Expr { src: "y".into(), is_float: true }),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            // binary arithmetic: the result is float if either side is
            (prop_oneof![Just("+"), Just("-"), Just("*")], inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Expr {
                    src: format!("({op} {} {})", a.src, b.src),
                    is_float: a.is_float || b.is_float,
                }),
            // float-only ops (operand coerced)
            inner.clone().prop_map(|a| Expr {
                src: format!("(sqrt (exact->inexact (abs {})))", a.src),
                is_float: true,
            }),
            // comparisons guarded inside if
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                // branches must have the same type for simplicity: coerce
                let (ts, es) = if t.is_float == e.is_float {
                    (t.src.clone(), e.src.clone())
                } else {
                    (
                        format!("(exact->inexact {})", t.src),
                        format!("(exact->inexact {})", e.src),
                    )
                };
                Expr {
                    src: format!("(if (< (exact->inexact {}) 25.0) {ts} {es})", c.src),
                    is_float: t.is_float || e.is_float,
                }
            }),
            // min/max keep both real
            (inner.clone(), inner).prop_map(|(a, b)| Expr {
                src: format!(
                    "(min (exact->inexact {}) (exact->inexact {}))",
                    a.src, b.src
                ),
                is_float: true,
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimizer-correctness property: untyped, typed-unoptimized,
    /// and typed-optimized builds of the same program agree on both
    /// engines.
    #[test]
    fn optimizer_preserves_semantics(e in arb_expr()) {
        let ret = if e.is_float { "Float" } else { "Integer" };
        let typed_body = format!(
            "(: f : Integer Float -> {ret})\n(define (f x y) {})\n(f 7 3.5)",
            e.src
        );
        let untyped_body = format!("(define (f x y) {})\n(f 7 3.5)", e.src);

        let lagoon = Lagoon::new();
        lagoon.add_module("u", &format!("#lang lagoon\n{untyped_body}\n"));
        lagoon.add_module("t", &format!("#lang typed/lagoon\n{typed_body}\n"));
        lagoon.add_module("n", &format!("#lang typed/no-opt\n{typed_body}\n"));

        let vu = lagoon.run("u", EngineKind::Vm).unwrap();
        let vt = lagoon.run("t", EngineKind::Vm).unwrap();
        let vn = lagoon.run("n", EngineKind::Vm).unwrap();
        let vi = lagoon.run("t", EngineKind::Interp).unwrap();

        prop_assert!(vu.equal(&vt), "untyped={} typed={} src={}", vu, vt, e.src);
        prop_assert!(vt.equal(&vn), "typed={} no-opt={} src={}", vt, vn, e.src);
        prop_assert!(vt.equal(&vi), "vm={} interp={} src={}", vt, vi, e.src);
    }

    /// Hygiene under adversarial user variable names: a macro-introduced
    /// temporary never captures user bindings, whatever they're called.
    #[test]
    fn hygiene_survives_any_names(name in "[a-z]{1,6}") {
        prop_assume!(!matches!(
            name.as_str(),
            "if" | "let" | "set" | "define" | "swap" | "a" | "b" | "tmp" | "t" | "x" | "y"
                | "begin" | "quote" | "lambda" | "cond" | "case" | "when" | "unless" | "and"
                | "or" | "else" | "map" | "list" | "cons" | "car" | "cdr" | "not" | "void"
                | "min" | "max" | "abs" | "sqrt" | "sin" | "cos" | "tan" | "log" | "exp"
                | "sum" | "iota" | "range" | "rest" | "first" | "last" | "error" | "sub"
        ));
        let lagoon = Lagoon::new();
        lagoon.add_module(
            "hygiene",
            &format!(
                "#lang lagoon
(define-syntax swap!
  (syntax-rules ()
    [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
(define tmp 1)
(define {name} 2)
(swap! tmp {name})
(list tmp {name})"
            ),
        );
        let v = lagoon.run("hygiene", EngineKind::Vm).unwrap();
        prop_assert_eq!(v.to_string(), "(2 1)");
    }

    /// Contracts are complete mediators: for any generated integer value,
    /// a typed (Integer -> Integer) export accepts integers from untyped
    /// clients and rejects every non-integer first-order value.
    #[test]
    fn contract_boundary_is_sound(n in -1000i64..1000, bad in "[a-z ]{0,8}") {
        let lagoon = Lagoon::new();
        lagoon.add_module(
            "server",
            "#lang typed/lagoon
             (: inc : Integer -> Integer)
             (define (inc x) (+ x 1))
             (provide inc)",
        );
        lagoon.add_module(
            "ok",
            &format!("#lang lagoon\n(require server)\n(inc {n})\n"),
        );
        let v = lagoon.run("ok", EngineKind::Vm).unwrap();
        prop_assert_eq!(v.to_string(), (n + 1).to_string());

        lagoon.add_module(
            "bad",
            &format!("#lang lagoon\n(require server)\n(inc {:?})\n", bad),
        );
        let err = lagoon.run("bad", EngineKind::Vm).unwrap_err();
        let is_contract = matches!(err.kind, lagoon::Kind::Contract { .. });
        prop_assert!(is_contract, "expected contract violation, got {}", err);
    }
}
