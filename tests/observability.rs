//! End-to-end tests of the diagnostics subsystem through the facade:
//! `run_with_stats` must surface phase timings, the optimizer decision
//! log, contract boundary crossings, and (with `vm-counters`) the
//! executed opcode mix — and the optimized opcode mix must actually
//! show the generic-to-specialized dispatch shift the paper's §7
//! rewrites promise.

use lagoon::{EngineKind, Lagoon};

/// A float-heavy typed loop: every iteration runs a comparison and two
/// arithmetic ops that the optimizer can specialize.
const FLOAT_LOOP: &str = "\
(: go : Integer Float -> Float)
(define (go i acc)
  (if (= i 0) acc (go (- i 1) (+ acc 1.5))))
(go 1000 0.0)
";

#[test]
fn stats_run_reports_phases_and_decisions() {
    let lagoon = Lagoon::new();
    lagoon.add_module("m", &format!("#lang typed/lagoon\n{FLOAT_LOOP}"));
    let (value, report) = lagoon.run_with_stats("m", EngineKind::Vm).unwrap();
    assert_eq!(value.to_string(), "1500.0");

    // phase rows cover the pipeline, ending with the run itself
    let phases: Vec<&str> = report.phases.iter().map(|p| p.phase).collect();
    for expected in ["read", "expand", "typecheck", "optimize", "compile", "run"] {
        assert!(
            phases.contains(&expected),
            "missing phase {expected}: {phases:?}"
        );
    }

    // the float addition in the loop body was specialized and logged
    assert!(
        report
            .rewrites
            .iter()
            .any(|r| r.family == "float" && r.op == "+"),
        "no float rewrite logged: {:?}",
        report.rewrites
    );

    // both renderings mention the decision log
    assert!(report.render_text().contains("optimizer decisions"));
    assert!(report.to_json().contains("\"rewrites\""));
}

#[test]
fn stats_run_uninstalls_sink_on_error() {
    let lagoon = Lagoon::new();
    lagoon.add_module("broken", "#lang typed/lagoon\n(+ 1 \"two\")\n");
    assert!(lagoon.run_with_stats("broken", EngineKind::Vm).is_err());
    // the sink must be gone: a plain run must not accumulate events
    assert!(!lagoon::diag::enabled());
}

/// The headline observability claim: under `typed/lagoon` the executed
/// opcode mix contains specialized (unsafe-derived) instructions and
/// strictly fewer generic tag-dispatching ones than the same program
/// under `typed/no-opt`.
#[cfg(feature = "vm-counters")]
#[test]
fn optimized_opcode_mix_shifts_from_generic_to_specialized() {
    let run = |lang: &str| {
        let lagoon = Lagoon::new();
        lagoon.add_module("m", &format!("#lang {lang}\n{FLOAT_LOOP}"));
        let (value, report) = lagoon.run_with_stats("m", EngineKind::Vm).unwrap();
        assert_eq!(value.to_string(), "1500.0");
        report
    };
    let unopt = run("typed/no-opt");
    let opt = run("typed/lagoon");

    assert!(unopt.total_ops() > 0 && opt.total_ops() > 0);
    assert_eq!(unopt.specialized_ops(), 0, "no-opt must stay generic");
    assert!(
        opt.specialized_ops() > 0,
        "optimized run executed no specialized ops: {:?}",
        opt.opcodes
    );
    assert!(
        opt.generic_ops() < unopt.generic_ops(),
        "optimized generic dispatches ({}) not below unoptimized ({})",
        opt.generic_ops(),
        unopt.generic_ops()
    );
    // and specific specialized mnemonics appear
    assert!(opt.opcodes.iter().any(|o| o.op.starts_with("Fl")));
}

#[test]
fn contract_boundary_crossings_are_counted_per_export() {
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "server",
        "#lang typed/lagoon
         (: inc : Integer -> Integer)
         (define (inc x) (+ x 1))
         (provide inc)",
    );
    lagoon.add_module(
        "client",
        "#lang lagoon
         (require server)
         (+ (inc 1) (inc 2) (inc 3))",
    );
    let (value, report) = lagoon.run_with_stats("client", EngineKind::Vm).unwrap();
    assert_eq!(value.to_string(), "9");
    let row = report
        .contracts
        .iter()
        .find(|c| c.export == "inc")
        .unwrap_or_else(|| panic!("no crossing row for inc: {:?}", report.contracts));
    assert_eq!(row.count, 3, "inc crossed the boundary 3 times");
    assert_eq!(row.positive, "server");
    // typed exports blame a generic "untyped-client" — the concrete
    // client is unknown when the wrapper is built
    assert_eq!(row.negative, "untyped-client");
}
