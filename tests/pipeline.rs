//! Cross-crate integration: a corpus of programs run through the full
//! read → expand → (typecheck → optimize) → compile → execute pipeline,
//! asserting that the AST interpreter and the bytecode VM agree, and that
//! typed/optimized variants agree with their untyped originals.

use lagoon::{EngineKind, Lagoon};

fn both(lagoon: &Lagoon, name: &str) -> lagoon::Value {
    let vm = lagoon.run(name, EngineKind::Vm).unwrap();
    let interp = lagoon.run(name, EngineKind::Interp).unwrap();
    assert!(
        vm.equal(&interp) || (vm.is_procedure() && interp.is_procedure()),
        "{name}: engines disagree: vm={vm} interp={interp}"
    );
    vm
}

#[test]
fn corpus_untyped() {
    let corpus: &[(&str, &str, &str)] = &[
        (
            "tak-ish",
            "(define (tak x y z)
            (if (not (< y x)) z
                (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
          (tak 10 5 0)",
            "5",
        ),
        (
            "string-building",
            r#"(define (repeat s n)
            (if (= n 0) "" (string-append s (repeat s (- n 1)))))
          (string-length (repeat "ab" 10))"#,
            "20",
        ),
        (
            "assoc-lists",
            "(define table '((a . 1) (b . 2) (c . 3)))
          (cdr (assq 'b table))",
            "2",
        ),
        (
            "vectors",
            "(define v (make-vector 10 0))
          (let loop ([i 0])
            (when (< i 10) (vector-set! v i (* i i)) (loop (+ i 1))))
          (vector-ref v 7)",
            "49",
        ),
        (
            "higher-order",
            "(foldl + 0 (map (lambda (x) (* x x)) (range 1 11)))",
            "385",
        ),
        ("char-code", "(char->integer (char-upcase #\\a))", "65"),
        (
            "deep-quasiquote",
            "(define x 5) `(1 (2 ,x) ,@(list 3 4))",
            "(1 (2 5) 3 4)",
        ),
        (
            "mutual-recursion",
            "(define (even2? n) (if (= n 0) #t (odd2? (- n 1))))
          (define (odd2? n) (if (= n 0) #f (even2? (- n 1))))
          (even2? 100)",
            "#t",
        ),
        (
            "closures-over-loops",
            "(define fs (map (lambda (i) (lambda () i)) '(1 2 3)))
          (foldl + 0 (map (lambda (f) (f)) fs))",
            "6",
        ),
        ("floats", "(exact->inexact (+ 1 (/ 1 2)))", "1.5"),
    ];
    let lagoon = Lagoon::new();
    for (name, body, expected) in corpus {
        lagoon.add_module(name, &format!("#lang lagoon\n{body}\n"));
        let v = both(&lagoon, name);
        assert_eq!(&v.to_string(), expected, "program {name}");
    }
}

#[test]
fn corpus_typed_matches_untyped() {
    // each entry: (name, untyped body, typed body computing the same thing)
    let corpus: &[(&str, &str, &str)] = &[
        (
            "sumfp",
            "(define (go i acc)
               (if (= i 0) acc (go (- i 1) (+ acc (exact->inexact i)))))
             (go 100 0.0)",
            "(: go : Integer Float -> Float)
             (define (go i acc)
               (if (= i 0) acc (go (- i 1) (+ acc (exact->inexact i)))))
             (go 100 0.0)",
        ),
        (
            "fibfp",
            "(define (fibfp n)
               (if (< n 2.0) n (+ (fibfp (- n 1.0)) (fibfp (- n 2.0)))))
             (fibfp 16.0)",
            "(: fibfp : Float -> Float)
             (define (fibfp n)
               (if (< n 2.0) n (+ (fibfp (- n 1.0)) (fibfp (- n 2.0)))))
             (fibfp 16.0)",
        ),
        (
            "complex-loop",
            "(define (count f n)
               (if (< (magnitude f) 0.001) n (count (/ f 2.0+2.0i) (+ n 1))))
             (count 100.0+100.0i 0)",
            "(: count : Float-Complex Integer -> Integer)
             (define (count f n)
               (if (< (magnitude f) 0.001) n (count (/ f 2.0+2.0i) (+ n 1))))
             (count 100.0+100.0i 0)",
        ),
        (
            "list-walk",
            "(define (sum-list l acc)
               (if (null? l) acc (sum-list (cdr l) (+ acc (car l)))))
             (sum-list (range 0 100) 0)",
            "(: sum-list : (Listof Integer) Integer -> Integer)
             (define (sum-list l acc)
               (if (null? l) acc (sum-list (cdr l) (+ acc (car l)))))
             (sum-list (range 0 100) 0)",
        ),
    ];
    let lagoon = Lagoon::new();
    for (name, untyped, typed) in corpus {
        let u = format!("u-{name}");
        let t = format!("t-{name}");
        let n = format!("n-{name}");
        lagoon.add_module(&u, &format!("#lang lagoon\n{untyped}\n"));
        lagoon.add_module(&t, &format!("#lang typed/lagoon\n{typed}\n"));
        lagoon.add_module(&n, &format!("#lang typed/no-opt\n{typed}\n"));
        let vu = both(&lagoon, &u);
        let vt = both(&lagoon, &t);
        let vn = both(&lagoon, &n);
        assert!(vu.equal(&vt), "{name}: untyped={vu} typed={vt}");
        assert!(vt.equal(&vn), "{name}: typed={vt} no-opt={vn}");
    }
}

#[test]
fn diamond_dependencies_instantiate_once() {
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "base",
        "#lang lagoon\n(display \"!\")\n(define one 1)\n(provide one)\n",
    );
    lagoon.add_module(
        "left",
        "#lang lagoon\n(require base)\n(define l (+ one 1))\n(provide l)\n",
    );
    lagoon.add_module(
        "right",
        "#lang lagoon\n(require base)\n(define r (+ one 2))\n(provide r)\n",
    );
    lagoon.add_module(
        "top",
        "#lang lagoon\n(require left)\n(require right)\n(+ l r)\n",
    );
    let (v, out) = lagoon.run_capturing("top", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "5");
    assert_eq!(out, "!", "base must instantiate exactly once");
}

#[test]
fn typed_modules_compose_transitively() {
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "t1",
        "#lang typed/lagoon
         (: double : Integer -> Integer)
         (define (double x) (* 2 x))
         (provide double)",
    );
    lagoon.add_module(
        "t2",
        "#lang typed/lagoon
         (require t1)
         (: quad : Integer -> Integer)
         (define (quad x) (double (double x)))
         (provide quad)",
    );
    lagoon.add_module(
        "u3",
        "#lang lagoon
         (require t2)
         (define (oct x) (quad (quad x)))
         (provide oct)",
    );
    lagoon.add_module(
        "t4",
        "#lang typed/lagoon
         (require/typed u3 [oct (Integer -> Integer)])
         (oct 1)",
    );
    let v = both(&lagoon, "t4");
    assert_eq!(v.to_string(), "16");
}

#[test]
fn languages_stack_on_languages() {
    // a user language built on the typed language? Not supported — but a
    // user language on the base language that *adds* a macro works:
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "verbose",
        r#"#lang lagoon
(define-syntax (#%module-begin stx)
  (syntax-parse stx
    [(_ body ...)
     #'(#%plain-module-begin
        (displayln "starting")
        body ...
        (displayln "done"))]))
(define-syntax loud-define
  (syntax-rules ()
    [(_ name value) (begin (define name value) (printf "defined ~a~%" 'name))]))
(provide #%module-begin loud-define)
"#,
    );
    lagoon.add_module(
        "prog",
        "#lang verbose
(loud-define x 42)
(displayln x)
",
    );
    let (_, out) = lagoon.run_capturing("prog", EngineKind::Vm).unwrap();
    assert_eq!(out, "starting\ndefined x\n42\ndone\n");
}

#[test]
fn separate_compilation_persists_types() {
    // compile the server; the client compiles in a *fresh* expander and
    // must recover add-5's type from the persisted declarations (§5)
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "server",
        "#lang typed/lagoon
         (: add-5 : Integer -> Integer)
         (define (add-5 x) (+ x 5))
         (provide add-5)",
    );
    // force compilation of the server first
    lagoon
        .registry()
        .compile(lagoon::Symbol::intern("server"))
        .unwrap();
    lagoon.add_module(
        "client",
        "#lang typed/lagoon
         (require server)
         (add-5 37)",
    );
    let v = both(&lagoon, "client");
    assert_eq!(v.to_string(), "42");
}

#[test]
fn errors_carry_useful_positions() {
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "bad",
        "#lang typed/lagoon\n(define: x : Integer 1)\n(define: y : Integer \"two\")\n",
    );
    let err = lagoon.run("bad", EngineKind::Vm).unwrap_err();
    let span = err.span.expect("type errors carry spans");
    assert_eq!(span.line, 3, "error should point at line 3: {err}");
}

#[test]
fn multiple_values_bind_and_check_arity() {
    let corpus: &[(&str, &str, &str)] = &[
        (
            "let-values-basic",
            "(let-values ([(a b) (values 1 2)]) (+ a b))",
            "3",
        ),
        (
            "let-values-mixed-clauses",
            "(let-values ([(a b) (values 1 2)] [(c) 10] [() (values)])
               (list a b c))",
            "(1 2 10)",
        ),
        (
            "let-values-evaluation-order",
            // non-recursive: right-hand sides see the outer x
            "(define x 100)
             (let-values ([(x y) (values 1 2)] [(z) x]) (list x y z))",
            "(1 2 100)",
        ),
        (
            "letrec-values-mutual-recursion",
            "(letrec-values ([(even? odd?)
                              (values (lambda (n) (if (= n 0) #t (odd? (- n 1))))
                                      (lambda (n) (if (= n 0) #f (even? (- n 1)))))])
               (list (even? 10) (odd? 7)))",
            "(#t #t)",
        ),
        (
            "define-values",
            "(define-values (q r) (values (quotient 17 5) (remainder 17 5)))
             (list q r)",
            "(3 2)",
        ),
        (
            "call-with-values",
            "(call-with-values (lambda () (values 1 2 3)) list)",
            "(1 2 3)",
        ),
        (
            "values-passthrough",
            // a single value is not packaged, so it flows anywhere
            "(+ (values 40) 2)",
            "42",
        ),
    ];
    for (name, body, expected) in corpus {
        let lagoon = Lagoon::new();
        lagoon.add_module(name, &format!("#lang lagoon\n{body}\n"));
        let v = both(&lagoon, name);
        assert_eq!(&v.to_string(), expected, "{name}");
    }
}

#[test]
fn multiple_values_arity_mismatch_is_an_error_not_a_panic() {
    for (name, body) in [
        ("too-many", "(define-values (a b) (values 1 2 3)) a"),
        ("too-few", "(let-values ([(a b c) (values 1 2)]) a)"),
        ("non-values", "(let-values ([(a b) 7]) a)"),
    ] {
        for engine in [EngineKind::Vm, EngineKind::Interp] {
            let lagoon = Lagoon::new();
            lagoon.add_module(name, &format!("#lang lagoon\n{body}\n"));
            let err = lagoon.run(name, engine).unwrap_err();
            assert!(
                err.to_string().contains("values"),
                "{name} ({engine:?}): {err}"
            );
        }
    }
}
