//! The numeric-equality table, evaluated from source on BOTH engines.
//!
//! `eqv?` follows Racket's bitwise-style flonum semantics — NaN is `eqv?`
//! to NaN (Lagoon canonicalizes every NaN to one bit pattern at
//! construction, so this holds for *any* two NaNs), and `0.0` is not
//! `eqv?` to `-0.0`. `=` and `equal?` keep IEEE comparison. Complex
//! numbers follow the same split componentwise. The same table is pinned
//! at the `Value` level in `crates/runtime/src/value.rs`
//! (`flonum_equality_table`); this file proves both execution engines
//! agree with it end to end, through the reader, expander, and (for the
//! VM) the compiled-constant codec.

use lagoon::{EngineKind, Lagoon};

fn eval(expr: &str, engine: EngineKind) -> String {
    let lagoon = Lagoon::new();
    lagoon.add_module("eq-table", &format!("#lang lagoon\n{expr}\n"));
    lagoon
        .run("eq-table", engine)
        .unwrap_or_else(|e| panic!("{expr} failed on {engine:?}: {e}"))
        .to_string()
}

/// Each row: (expression, expected printed result). Expected values
/// checked against Racket 8.x, except the `equal?` flonum rows, where
/// ISSUE 8 pins IEEE semantics (Racket's `equal?` defers to `eqv?` on
/// numbers; Lagoon's intentionally matches `=` instead — see the
/// `flonum_equality_table` doc table in value.rs).
const TABLE: &[(&str, &str)] = &[
    // eqv?: bitwise-style on flonums
    ("(eqv? +nan.0 +nan.0)", "#t"),
    ("(eqv? +nan.0 -nan.0)", "#t"),
    ("(eqv? 0.0 -0.0)", "#f"),
    ("(eqv? -0.0 0.0)", "#f"),
    ("(eqv? 0.0 0.0)", "#t"),
    ("(eqv? -0.0 -0.0)", "#t"),
    ("(eqv? 1.5 1.5)", "#t"),
    ("(eqv? +inf.0 +inf.0)", "#t"),
    ("(eqv? +inf.0 -inf.0)", "#f"),
    // eqv? never equates exact and inexact
    ("(eqv? 1 1.0)", "#f"),
    ("(eqv? 1 1)", "#t"),
    // = keeps IEEE
    ("(= +nan.0 +nan.0)", "#f"),
    ("(= 0.0 -0.0)", "#t"),
    ("(= 1 1.0)", "#t"),
    // equal? keeps IEEE on numbers (ISSUE 8; diverges from Racket)
    ("(equal? +nan.0 +nan.0)", "#f"),
    ("(equal? 0.0 -0.0)", "#t"),
    // complex: componentwise, same split
    (
        "(eqv? (make-rectangular +nan.0 1.0) (make-rectangular +nan.0 1.0))",
        "#t",
    ),
    (
        "(eqv? (make-rectangular 0.0 0.0) (make-rectangular -0.0 0.0))",
        "#f",
    ),
    (
        "(equal? (make-rectangular 0.0 0.0) (make-rectangular -0.0 0.0))",
        "#t",
    ),
    ("(eqv? 2.0+3.0i 2.0+3.0i)", "#t"),
    ("(= 2.0+3.0i 2.0+3.0i)", "#t"),
    // NaN arithmetic still produces an eqv?-stable NaN (canonicalization
    // happens on every float construction, not just reader literals)
    ("(eqv? (/ 0.0 0.0) (* +inf.0 0.0))", "#t"),
    ("(eqv? (- 0.0) 0.0)", "#f"),
];

#[test]
fn equality_table_on_vm() {
    for (expr, want) in TABLE {
        assert_eq!(&eval(expr, EngineKind::Vm), want, "vm: {expr}");
    }
}

#[test]
fn equality_table_on_interp() {
    for (expr, want) in TABLE {
        assert_eq!(&eval(expr, EngineKind::Interp), want, "interp: {expr}");
    }
}

#[test]
fn engines_agree_on_every_row() {
    // belt and braces: even if the table drifts, the engines must agree
    for (expr, _) in TABLE {
        assert_eq!(
            eval(expr, EngineKind::Vm),
            eval(expr, EngineKind::Interp),
            "engine divergence on {expr}"
        );
    }
}
