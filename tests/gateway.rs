//! Integration tests for the HTTP gateway: a real `lagoon gateway`
//! process (two spawned daemon shards sharing one store) takes raw
//! sockets probing the HTTP/1.1 parser's edges, pipelined and
//! keep-alive traffic, trace-id propagation, and a shard kill with
//! failover and supervised respawn.

use lagoon::gateway::http::HttpClient;
use lagoon::server::json::{self, Json};
use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct GatewayProc {
    child: Child,
    addr: String,
}

impl GatewayProc {
    fn spawn(extra: &[&str]) -> GatewayProc {
        let mut args = vec!["--addr", "127.0.0.1:0"];
        if !extra.contains(&"--shards") {
            args.extend(["--shards", "2"]);
        }
        if !extra.contains(&"--workers-per-shard") {
            args.extend(["--workers-per-shard", "1"]);
        }
        let mut child = Command::new(env!("CARGO_BIN_EXE_lagoon"))
            .arg("gateway")
            .args(args)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lagoon gateway");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen line");
        let rest = line
            .trim()
            .strip_prefix("gateway listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"));
        let addr = rest
            .split_whitespace()
            .next()
            .expect("address in banner")
            .to_string();
        GatewayProc { child, addr }
    }

    fn client(&self) -> HttpClient {
        HttpClient::connect(&self.addr, Some(Duration::from_secs(30))).expect("connect")
    }

    fn shutdown(mut self) {
        let mut client = self.client();
        let _ = client.request("POST", "/v1/shutdown", &[], b"{}");
        for _ in 0..200 {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    assert!(status.success(), "gateway exited with {status}");
                    return;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => panic!("try_wait: {e}"),
            }
        }
        let _ = self.child.kill();
        panic!("gateway did not drain within 10s of shutdown");
    }
}

/// Writes raw bytes and returns everything the gateway sends back
/// before closing (these probes all hit close-the-connection errors).
fn raw_roundtrip(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(bytes).expect("write");
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    String::from_utf8_lossy(&response).into_owned()
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"))
}

fn body_json(response: &lagoon::gateway::http::HttpResponse) -> Json {
    json::parse(&response.body_str())
        .unwrap_or_else(|e| panic!("non-JSON body {:?}: {e}", response.body_str()))
}

#[test]
fn parser_edges_get_structured_errors() {
    let gateway = GatewayProc::spawn(&["--shards", "1"]);

    // Malformed request line: no version token.
    let r = raw_roundtrip(&gateway.addr, b"GARBAGE\r\n\r\n");
    assert_eq!(status_of(&r), 400, "malformed request line: {r}");
    assert!(r.contains("\"kind\":\"protocol\""), "structured body: {r}");

    // One header line over the 8 KiB cap.
    let mut oversized = Vec::from(&b"GET /v1/healthz HTTP/1.1\r\nx-big: "[..]);
    oversized.extend(vec![b'a'; 9 * 1024]);
    oversized.extend_from_slice(b"\r\n\r\n");
    let r = raw_roundtrip(&gateway.addr, &oversized);
    assert_eq!(status_of(&r), 431, "oversized header: {r}");

    // Unparseable Content-Length.
    let r = raw_roundtrip(
        &gateway.addr,
        b"POST /v1/run HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
    );
    assert_eq!(status_of(&r), 400, "bad content-length: {r}");

    // POST with a body but no Content-Length at all.
    let r = raw_roundtrip(&gateway.addr, b"POST /v1/run HTTP/1.1\r\n\r\n{}");
    assert_eq!(status_of(&r), 411, "missing content-length: {r}");

    // Declared body over the gateway's cap: shed-shaped, not retryable.
    let r = raw_roundtrip(
        &gateway.addr,
        b"POST /v1/run HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
    );
    assert_eq!(status_of(&r), 413, "oversized body: {r}");
    assert!(
        r.contains("\"reason\":\"request-too-large\""),
        "structured reason: {r}"
    );

    gateway.shutdown();
}

#[test]
fn pipelined_bursts_answer_in_order() {
    let gateway = GatewayProc::spawn(&[]);
    let mut client = gateway.client();

    // Queue three requests back to back without reading, then drain:
    // responses must come back in request order on the one connection.
    let bodies = [
        r##"{"source":"#lang lagoon\n(+ 1 1)\n"}"##,
        r##"{"source":"#lang lagoon\n(+ 2 2)\n"}"##,
        r##"{"source":"#lang lagoon\n(+ 3 3)\n"}"##,
    ];
    for body in &bodies {
        client
            .send("POST", "/v1/run", &[], body.as_bytes())
            .expect("pipelined send");
    }
    for expected in ["2", "4", "6"] {
        let response = client.read_response().expect("pipelined read");
        assert_eq!(response.status, 200);
        let parsed = body_json(&response);
        assert_eq!(
            parsed.get("value").and_then(Json::as_str),
            Some(expected),
            "in-order pipelined response"
        );
    }
    gateway.shutdown();
}

#[test]
fn keep_alive_survives_clean_errors_and_echoes_traces() {
    let gateway = GatewayProc::spawn(&[]);
    let mut client = gateway.client();

    // A clean framing-level app error (404) must not cost the
    // connection...
    let response = client
        .request("GET", "/v1/nope", &[], b"")
        .expect("404 roundtrip");
    assert_eq!(response.status, 404);
    // ...nor a wrong method (405)...
    let response = client
        .request("GET", "/v1/run", &[], b"")
        .expect("405 roundtrip");
    assert_eq!(response.status, 405);
    // ...nor a bad JSON body (400).
    let response = client
        .request("POST", "/v1/run", &[], b"not json")
        .expect("400 roundtrip");
    assert_eq!(response.status, 400);

    // Same connection still serves real work, and the trace id rides
    // the request into the daemon and back out as a header.
    let headers = [("x-lagoon-trace-id", "gw-test-trace-1".to_string())];
    let response = client
        .request(
            "POST",
            "/v1/run",
            &headers,
            br##"{"source":"#lang lagoon\n(* 6 7)\n"}"##,
        )
        .expect("run after errors");
    assert_eq!(response.status, 200);
    let parsed = body_json(&response);
    assert_eq!(parsed.get("value").and_then(Json::as_str), Some("42"));
    assert_eq!(
        response.header("x-lagoon-trace-id"),
        Some("gw-test-trace-1"),
        "trace id echoed"
    );
    assert!(
        response.header("x-lagoon-shard").is_some(),
        "serving shard is attributed"
    );
    gateway.shutdown();
}

#[test]
fn stats_and_healthz_report_the_fleet() {
    let gateway = GatewayProc::spawn(&[]);
    let mut client = gateway.client();

    let response = client
        .request("GET", "/v1/healthz", &[], b"")
        .expect("healthz");
    assert_eq!(response.status, 200);
    let parsed = body_json(&response);
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(parsed.get("live").and_then(Json::as_u64), Some(2));

    // Drive one request so the stats have something to count.
    let response = client
        .request(
            "POST",
            "/v1/run",
            &[],
            br##"{"source":"#lang lagoon\n(+ 1 2)\n"}"##,
        )
        .expect("run");
    assert_eq!(response.status, 200);

    let response = client.request("GET", "/v1/stats", &[], b"").expect("stats");
    assert_eq!(response.status, 200);
    let parsed = body_json(&response);
    assert_eq!(parsed.get("shards").and_then(Json::as_u64), Some(2));
    let http = parsed.get("http").expect("http stats");
    assert!(http.get("requests").and_then(Json::as_u64).unwrap_or(0) >= 2);
    let shard_gauges = match parsed.get("shard") {
        Some(Json::Arr(items)) => items.len(),
        other => panic!("shard gauges missing: {other:?}"),
    };
    assert_eq!(shard_gauges, 2);
    // Deep stats reach into each daemon.
    match parsed.get("daemons") {
        Some(Json::Arr(daemons)) => assert_eq!(daemons.len(), 2),
        other => panic!("daemon stats missing: {other:?}"),
    }
    gateway.shutdown();
}

#[test]
fn killed_shard_fails_over_and_respawns() {
    let gateway = GatewayProc::spawn(&["--test-ops"]);
    let mut client = gateway.client();

    let response = client
        .request("POST", "/v1/test/kill-shard", &[], br#"{"shard":0}"#)
        .expect("kill shard");
    assert_eq!(response.status, 200, "{}", response.body_str());

    // Requests keep succeeding: the dead shard is skipped or failed
    // over while the supervisor brings a replacement up.
    for i in 0..4 {
        let body = format!(r##"{{"source":"#lang lagoon\n(+ {i} 1)\n"}}"##);
        let response = client
            .request("POST", "/v1/run", &[], body.as_bytes())
            .expect("run during failover");
        assert_eq!(response.status, 200, "{}", response.body_str());
        let parsed = body_json(&response);
        assert_eq!(
            parsed.get("value").and_then(Json::as_str),
            Some(format!("{}", i + 1).as_str())
        );
    }

    // The supervisor respawns the shard; stats record the respawn and
    // the fleet returns to full strength.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let response = client.request("GET", "/v1/stats", &[], b"").expect("stats");
        let parsed = body_json(&response);
        let live = parsed.get("live").and_then(Json::as_u64).unwrap_or(0);
        let respawns = match parsed.get("shard") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|g| g.get("respawns").and_then(Json::as_u64).unwrap_or(0))
                .sum::<u64>(),
            _ => 0,
        };
        if live == 2 && respawns >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shard not respawned: live={live} respawns={respawns}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    gateway.shutdown();
}
