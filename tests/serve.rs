//! Integration tests for the evaluation daemon: a real `lagoon serve`
//! process takes 16 concurrent requests mixing well-typed programs,
//! type errors, runtime errors, and deadline-exceeding loops — every
//! response is structured JSON, per-request limits hold, and no state
//! crosses requests.

use lagoon::server::client;
use lagoon::server::json::{self, Json};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut args = vec!["--addr", "127.0.0.1:0"];
        // default pool size, unless the test picks its own
        if !extra.contains(&"--workers") {
            args.extend(["--workers", "4"]);
        }
        let mut child = Command::new(env!("CARGO_BIN_EXE_lagoon"))
            .arg("serve")
            .args(args)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn lagoon serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    /// Sends `{"op":"shutdown"}` and waits (bounded) for the drain.
    fn shutdown(mut self) {
        let _ = client::request_line(
            &self.addr,
            "{\"op\":\"shutdown\"}",
            Some(Duration::from_secs(10)),
        );
        for _ in 0..200 {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(e) => panic!("try_wait: {e}"),
            }
        }
        let _ = self.child.kill();
        panic!("daemon did not drain within 10s of shutdown");
    }
}

fn roundtrip(addr: &str, request: &str) -> Json {
    let response = client::request_line(addr, request, Some(Duration::from_secs(30)))
        .unwrap_or_else(|e| panic!("request failed: {e}"));
    json::parse(&response).unwrap_or_else(|e| panic!("non-JSON response {response:?}: {e}"))
}

fn err_kind(response: &Json) -> Option<&str> {
    response.get("error")?.get("kind")?.as_str()
}

#[test]
fn daemon_serves_16_concurrent_mixed_requests() {
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    // Four request shapes × four repetitions = 16 concurrent clients.
    // The well-typed one defines and mutates module state, so any
    // cross-request bleed would change its observed value.
    let well_typed = client::inline_request(
        "run",
        "#lang typed/lagoon\n(define: c : Integer 0)\n(set! c (+ c 1))\n(display c)\nc\n",
        vec![],
    );
    let type_error = client::inline_request(
        "run",
        "#lang typed/lagoon\n(define: x : Integer \"not an int\")\nx\n",
        vec![],
    );
    let runtime_error = client::inline_request("run", "#lang lagoon\n(car 5)\n", vec![]);
    let deadline = client::inline_request(
        "run",
        "#lang lagoon\n(define (spin n) (spin (+ n 1)))\n(spin 0)\n",
        vec![("max_vm_steps", 50_000), ("timeout_ms", 2_000)],
    );

    let responses: Vec<(usize, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let addr = addr.clone();
                let request = match i % 4 {
                    0 => well_typed.clone(),
                    1 => type_error.clone(),
                    2 => runtime_error.clone(),
                    _ => deadline.clone(),
                };
                scope.spawn(move || (i, roundtrip(&addr, &request)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    assert_eq!(responses.len(), 16);
    for (i, response) in &responses {
        match i % 4 {
            0 => {
                assert_eq!(
                    response.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "well-typed request failed: {response}"
                );
                // no cross-request bleed: the counter always starts at 0
                assert_eq!(
                    response.get("value").and_then(Json::as_str),
                    Some("1"),
                    "module state leaked between requests: {response}"
                );
                assert_eq!(response.get("output").and_then(Json::as_str), Some("1"));
            }
            1 => {
                assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
                let message = response
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or_default();
                assert!(
                    message.contains("typecheck"),
                    "expected a typecheck error: {response}"
                );
            }
            2 => {
                assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
                assert_eq!(
                    err_kind(response),
                    Some("type"),
                    "expected a structured type error: {response}"
                );
            }
            _ => {
                assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
                assert_eq!(
                    err_kind(response),
                    Some("resource-exhausted"),
                    "expected Kind::ResourceExhausted: {response}"
                );
                assert!(
                    response
                        .get("error")
                        .and_then(|e| e.get("budget"))
                        .and_then(Json::as_str)
                        .is_some(),
                    "exhaustion must name its budget: {response}"
                );
            }
        }
        // every response carries its latency
        assert!(
            response.get("micros").and_then(Json::as_u64).is_some(),
            "missing micros: {response}"
        );
    }

    // the stats op reflects the traffic: 16 requests done, with run
    // latencies recorded in the per-op histogram
    let stats = roundtrip(&addr, "{\"op\":\"stats\"}");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let done = stats
        .get("requests")
        .and_then(|r| r.get("done"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(done >= 16, "stats lost requests: {stats}");
    let run_count = stats
        .get("ops")
        .and_then(|o| o.get("run"))
        .and_then(|r| r.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(run_count >= 16, "run histogram lost samples: {stats}");

    daemon.shutdown();
}

#[test]
fn daemon_expand_check_and_protocol_errors() {
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    let expanded = roundtrip(
        &addr,
        &client::inline_request(
            "expand",
            "#lang lagoon\n(define (f x) (* x x))\n(f 3)\n",
            vec![],
        ),
    );
    assert_eq!(expanded.get("ok").and_then(Json::as_bool), Some(true));
    let forms = match expanded.get("forms") {
        Some(Json::Arr(forms)) => forms,
        other => panic!("expand returned no forms: {other:?}"),
    };
    assert!(!forms.is_empty());

    let checked = roundtrip(
        &addr,
        &client::inline_request(
            "check",
            "#lang typed/lagoon\n(: ok : Integer -> Integer)\n(define (ok n) (+ n 1))\n",
            vec![],
        ),
    );
    assert_eq!(checked.get("ok").and_then(Json::as_bool), Some(true));

    // malformed JSON and unknown ops come back as protocol errors, not
    // dropped connections
    let garbage = roundtrip(&addr, "this is not json");
    assert_eq!(err_kind(&garbage), Some("protocol"));
    let unknown = roundtrip(&addr, "{\"op\":\"reboot\"}");
    assert_eq!(err_kind(&unknown), Some("protocol"));
    let missing = roundtrip(&addr, "{\"op\":\"run\"}");
    assert_eq!(err_kind(&missing), Some("protocol"));

    // one connection can pipeline several requests
    let mut conn =
        client::Connection::connect(&addr, Some(Duration::from_secs(30))).expect("connect");
    for i in 0..3 {
        let request = client::inline_request("run", &format!("#lang lagoon\n(+ {i} 10)\n"), vec![]);
        let response = conn.roundtrip(&request).expect("pipelined request");
        let parsed = json::parse(&response).expect("json");
        assert_eq!(
            parsed.get("value").and_then(Json::as_str),
            Some(format!("{}", i + 10).as_str())
        );
    }

    daemon.shutdown();
}

#[test]
fn daemon_backpressure_rejects_rather_than_queues_unboundedly() {
    // one worker and a 2-deep queue: flooding with slow requests must
    // produce resource-exhausted rejections, and the daemon must stay
    // healthy afterwards
    let daemon = Daemon::spawn(&["--queue-cap", "2", "--workers", "1"]);
    let addr = daemon.addr.clone();

    let slow = client::inline_request(
        "run",
        "#lang lagoon\n(define (spin n) (if (= n 0) 'done (spin (- n 1))))\n(spin 3000000)\n",
        vec![],
    );
    let rejected = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let addr = addr.clone();
                let slow = slow.clone();
                scope.spawn(move || roundtrip(&addr, &slow))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .filter(|r| err_kind(r) == Some("resource-exhausted"))
            .count()
    });
    assert!(
        rejected > 0,
        "a 2-deep queue under 12 concurrent slow requests must reject some"
    );

    // after the flood, the daemon still answers
    let after = roundtrip(
        &addr,
        &client::inline_request("run", "#lang lagoon\n(+ 1 2)\n", vec![]),
    );
    assert_eq!(after.get("value").and_then(Json::as_str), Some("3"));

    daemon.shutdown();
}

fn gauge(stats: &Json, outer: &str, inner: &str) -> u64 {
    stats
        .get(outer)
        .and_then(|o| o.get(inner))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats missing {outer}.{inner}: {stats}"))
}

#[test]
fn daemon_stats_gauges_trace_ids_and_flat_interner() {
    let daemon = Daemon::spawn(&[]);
    let addr = daemon.addr.clone();

    let before = roundtrip(&addr, "{\"op\":\"stats\"}");
    assert!(
        gauge(&before, "interner", "at_start") <= gauge(&before, "interner", "symbols"),
        "baseline precedes the current count: {before}"
    );

    // inline-source load with request-unique identifiers: workers
    // truncate their symbol epoch after each request, so even names the
    // registry never saw before must not accumulate
    for i in 0..12 {
        let source = format!("#lang lagoon\n(define gauge-probe-{i} {i})\n(+ gauge-probe-{i} 1)\n");
        let response = roundtrip(&addr, &client::inline_request("run", &source, vec![]));
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        // every response carries a generated trace id and a per-phase
        // pipeline summary
        assert!(
            response.get("trace_id").and_then(Json::as_str).is_some(),
            "missing trace_id: {response}"
        );
        let phases = response
            .get("phases")
            .unwrap_or_else(|| panic!("missing phases: {response}"));
        for key in ["read", "expand", "check", "compile", "load", "run"] {
            assert!(
                matches!(phases.get(key), Some(Json::Num(_))),
                "phases missing {key}: {response}"
            );
        }
    }

    // a client-supplied trace id is echoed back verbatim
    let tagged = client::inline_request("run", "#lang lagoon\n(+ 1 2)\n", vec![]).replacen(
        '{',
        "{\"trace_id\":\"probe-xyz\",",
        1,
    );
    let response = roundtrip(&addr, &tagged);
    assert_eq!(
        response.get("trace_id").and_then(Json::as_str),
        Some("probe-xyz"),
        "{response}"
    );

    // compare within one settled snapshot: the first stats call can
    // race worker-world construction, so baselines land later
    let after = roundtrip(&addr, "{\"op\":\"stats\"}");
    let symbols_after = gauge(&after, "interner", "symbols");
    assert_eq!(
        symbols_after,
        gauge(&after, "interner", "at_start"),
        "epoch truncation must return every worker to its baseline: {after}"
    );
    assert_eq!(
        gauge(&after, "interner", "growth"),
        0,
        "inline requests must not leak interned symbols: {after}"
    );
    assert!(gauge(&after, "interner", "high_water") >= symbols_after);
    assert!(gauge(&after, "interner", "arena") > 0, "{after}");
    // store gauge present (zero: this daemon has no cache dir); queue
    // depth series and worker spans recorded the traffic
    assert!(after.get("store").and_then(|s| s.get("bytes")).is_some());
    let series = match after.get("queue").and_then(|q| q.get("depth_series")) {
        Some(Json::Arr(series)) => series,
        other => panic!("queue.depth_series missing: {other:?}"),
    };
    assert!(!series.is_empty());
    let spans = match after.get("worker_spans") {
        Some(Json::Arr(spans)) => spans,
        other => panic!("worker_spans missing: {other:?}"),
    };
    assert!(spans.len() >= 13, "expected a span per request: {after}");
    assert!(spans
        .iter()
        .any(|s| s.get("trace_id").and_then(Json::as_str) == Some("probe-xyz")));
    for span in spans {
        assert!(span.get("op").and_then(Json::as_str).is_some());
        assert!(span.get("worker").and_then(Json::as_u64).is_some());
    }

    daemon.shutdown();
}

#[test]
fn daemon_recovers_from_worker_death() {
    // a single worker, killed mid-request: the in-flight client gets a
    // structured error (never a hung connection), the supervisor
    // respawns the slot, and the SAME connection keeps working
    let daemon = Daemon::spawn(&["--workers", "1", "--test-ops"]);
    let addr = daemon.addr.clone();

    let mut conn =
        client::Connection::connect(&addr, Some(Duration::from_secs(30))).expect("connect");
    let killed = conn
        .roundtrip("{\"op\":\"test-kill\"}")
        .expect("kill roundtrip");
    let killed = json::parse(&killed).expect("json");
    assert_eq!(killed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(err_kind(&killed), Some("internal"), "{killed}");

    // follow-up requests queue until the respawned worker drains them —
    // no request is lost to the death
    for i in 0..3 {
        let request = client::inline_request("run", &format!("#lang lagoon\n(+ {i} 1)\n"), vec![]);
        let response = conn.roundtrip(&request).expect("post-death request");
        let parsed = json::parse(&response).expect("json");
        assert_eq!(
            parsed.get("value").and_then(Json::as_str),
            Some(format!("{}", i + 1).as_str()),
            "daemon wedged after worker death: {parsed}"
        );
    }

    let stats = roundtrip(&addr, "{\"op\":\"stats\"}");
    assert!(gauge(&stats, "supervision", "deaths") >= 1, "{stats}");
    assert!(gauge(&stats, "supervision", "respawns") >= 1, "{stats}");
    assert_eq!(gauge(&stats, "supervision", "live"), 1, "{stats}");

    daemon.shutdown();
}

#[test]
fn daemon_contains_request_panics_without_losing_the_worker() {
    let daemon = Daemon::spawn(&["--workers", "1", "--test-ops"]);
    let addr = daemon.addr.clone();

    let panicked = roundtrip(&addr, "{\"op\":\"test-panic\"}");
    assert_eq!(panicked.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(err_kind(&panicked), Some("internal"), "{panicked}");

    // the worker caught the panic, rebuilt its world, and still answers
    let after = roundtrip(
        &addr,
        &client::inline_request("run", "#lang lagoon\n(* 6 7)\n", vec![]),
    );
    assert_eq!(after.get("value").and_then(Json::as_str), Some("42"));

    let stats = roundtrip(&addr, "{\"op\":\"stats\"}");
    assert!(gauge(&stats, "supervision", "panics") >= 1, "{stats}");
    assert_eq!(
        gauge(&stats, "supervision", "deaths"),
        0,
        "a contained panic must not kill the worker: {stats}"
    );
    // the rebuilt world still reports a flat interner at idle
    assert_eq!(gauge(&stats, "interner", "growth"), 0, "{stats}");

    daemon.shutdown();
}

#[test]
fn daemon_recycles_worker_worlds_on_schedule() {
    let daemon = Daemon::spawn(&["--workers", "1", "--recycle-after", "2"]);
    let addr = daemon.addr.clone();

    for i in 0..5 {
        let request = client::inline_request("run", &format!("#lang lagoon\n(+ {i} 2)\n"), vec![]);
        let response = roundtrip(&addr, &request);
        assert_eq!(
            response.get("value").and_then(Json::as_str),
            Some(format!("{}", i + 2).as_str()),
            "recycling must be invisible to clients: {response}"
        );
    }

    let stats = roundtrip(&addr, "{\"op\":\"stats\"}");
    assert!(
        gauge(&stats, "supervision", "recycles") >= 2,
        "5 requests at --recycle-after 2 must recycle at least twice: {stats}"
    );
    assert_eq!(gauge(&stats, "interner", "growth"), 0, "{stats}");

    daemon.shutdown();
}

#[test]
fn shedding_rejections_are_marked_retryable_and_retry_succeeds() {
    // one worker, 1-deep queue: flood it, then confirm (a) rejections
    // carry reason + retryable, (b) the retrying client path eventually
    // lands every request once the flood drains
    let daemon = Daemon::spawn(&["--queue-cap", "1", "--workers", "1"]);
    let addr = daemon.addr.clone();

    let slow = client::inline_request(
        "run",
        "#lang lagoon\n(define (spin n) (if (= n 0) 'done (spin (- n 1))))\n(spin 400000)\n",
        vec![],
    );
    // generous attempt budget: debug-build daemons drain the flood
    // slowly, and a retrier must outlast it
    let policy = client::RetryPolicy {
        attempts: 25,
        base: Duration::from_millis(50),
        max: Duration::from_millis(500),
        seed: 7,
    };
    let (rejections, retried_ok) = std::thread::scope(|scope| {
        // plain clients provide the flood and count shed responses
        let floods: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let slow = slow.clone();
                scope.spawn(move || roundtrip(&addr, &slow))
            })
            .collect();
        // retrying clients must all land despite the flood
        let retriers: Vec<_> = (0..4)
            .map(|i| {
                let addr = addr.clone();
                let request =
                    client::inline_request("run", &format!("#lang lagoon\n(+ {i} 100)\n"), vec![]);
                let policy = client::RetryPolicy { seed: i, ..policy };
                scope.spawn(move || {
                    client::request_line_retry(
                        &addr,
                        &request,
                        Some(Duration::from_secs(30)),
                        &policy,
                    )
                    .expect("retry client io")
                })
            })
            .collect();
        let rejections = floods
            .into_iter()
            .map(|h| h.join().expect("flood client"))
            .filter(|r| {
                if err_kind(r) != Some("resource-exhausted") {
                    return false;
                }
                let err = r.get("error").expect("error object");
                // daemon shedding names its reason and marks retryability;
                // program-level budget exhaustion has neither
                if err.get("budget").is_some() {
                    return false;
                }
                assert!(
                    matches!(
                        err.get("reason").and_then(Json::as_str),
                        Some("queue-full" | "workers-degraded" | "workers-unavailable")
                    ),
                    "shed without a reason: {r}"
                );
                assert_eq!(err.get("retryable").and_then(Json::as_bool), Some(true));
                true
            })
            .count();
        let retried_ok = retriers
            .into_iter()
            .map(|h| h.join().expect("retry client"))
            .filter(|(response, _)| {
                let parsed = json::parse(response).expect("json");
                parsed.get("ok").and_then(Json::as_bool) == Some(true)
            })
            .count();
        (rejections, retried_ok)
    });
    assert!(
        rejections > 0,
        "a 1-deep queue under 12 concurrent requests must shed some"
    );
    assert_eq!(
        retried_ok, 4,
        "every retrying client must eventually succeed"
    );

    daemon.shutdown();
}

#[test]
fn oversized_request_lines_are_rejected_and_resync() {
    let daemon = Daemon::spawn(&["--max-request-bytes", "4096"]);
    let mut conn =
        client::Connection::connect(&daemon.addr, Some(Duration::from_secs(10))).expect("connect");

    // A request line far over the cap: the daemon must answer with a
    // structured rejection instead of buffering it (or dying), then
    // resynchronize at the newline so the connection keeps working.
    let giant = format!(
        "{{\"op\":\"run\",\"source\":\"#lang lagoon\\n{}\\n\"}}",
        "(+ 1 1) ".repeat(2048)
    );
    assert!(giant.len() > 8192, "probe must exceed the cap");
    let response = conn.roundtrip(&giant).expect("rejection roundtrip");
    let parsed = json::parse(&response).expect("structured rejection");
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    let err = parsed.get("error").expect("error object");
    assert_eq!(
        err.get("kind").and_then(Json::as_str),
        Some("resource-exhausted")
    );
    assert_eq!(
        err.get("reason").and_then(Json::as_str),
        Some("request-too-large")
    );
    assert_eq!(err.get("retryable").and_then(Json::as_bool), Some(false));

    // Same connection, normal-sized request: still served.
    let response = conn
        .roundtrip("{\"op\":\"run\",\"source\":\"#lang lagoon\\n(+ 20 1)\\n\"}")
        .expect("post-rejection roundtrip");
    let parsed = json::parse(&response).expect("json");
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(parsed.get("value").and_then(Json::as_str), Some("21"));

    daemon.shutdown();
}
