//! End-to-end tests for the on-disk compiled-module store: warm runs
//! load `.lagc` artifacts instead of compiling, edits invalidate a
//! module *and* its dependents, corrupt artifacts fall back to
//! recompilation with a structured diagnostic, typed exports rehydrate
//! from their persisted recipes, and the lazy module loader resolves
//! requires — including macro-generated ones — at compile time.

use lagoon::{EngineKind, Lagoon};
use std::path::PathBuf;

const UTIL: &str = "#lang typed/lagoon
(: triple : Integer -> Integer)
(define (triple n) (* 3 n))
(provide triple)
";

const MAIN: &str = "#lang lagoon
(require util)
(triple 14)
";

/// A fresh, empty store directory unique to this test.
fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lagoon-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cached_world(tag: &str) -> (Lagoon, PathBuf) {
    let dir = temp_store(tag);
    let lagoon = Lagoon::new();
    lagoon.set_cache_dir(Some(dir.clone()));
    lagoon.add_module("util", UTIL);
    lagoon.add_module("main", MAIN);
    (lagoon, dir)
}

#[test]
fn warm_run_hits_the_store_for_every_module() {
    let (lagoon, dir) = cached_world("warm");
    let (v1, cold) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v1.to_string(), "42");
    assert_eq!(
        cold.cache_hits(),
        0,
        "cold run cannot hit: {:?}",
        cold.caches
    );
    assert_eq!(cold.cache_misses(), 2);
    assert!(dir.join("util.lagc").is_file());
    assert!(dir.join("main.lagc").is_file());

    lagoon.registry().reset_compiled();
    let (v2, warm) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v2.to_string(), "42");
    assert_eq!(
        warm.cache_misses(),
        0,
        "warm run compiled: {:?}",
        warm.caches
    );
    assert_eq!(warm.cache_hits(), 2);

    // the decoded core forms drive the interpreter engine too
    let v3 = lagoon.run("main", EngineKind::Interp).unwrap();
    assert_eq!(v3.to_string(), "42");
}

#[test]
fn fresh_importers_use_rehydrated_typed_exports() {
    let (lagoon, _dir) = cached_world("rehydrate");
    lagoon.run("main", EngineKind::Vm).unwrap();
    lagoon.registry().reset_compiled();

    // an untyped client compiled against the cache-loaded typed module:
    // the export indirection was rebuilt from its persisted recipe, and
    // picks the contract-protected variant here
    lagoon.add_module("client", "#lang lagoon\n(require util)\n(triple 5)\n");
    let (v, report) = lagoon.run_with_stats("client", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "15");
    assert!(
        report
            .caches
            .iter()
            .any(|r| r.module == "util" && r.status == "hit"),
        "util should load from the store: {:?}",
        report.caches
    );

    // a typed client needs util's *persisted type declarations* replayed
    // from the artifact, and links against the raw (uncontracted) export
    lagoon.registry().reset_compiled();
    lagoon.add_module(
        "typed-client",
        "#lang typed/lagoon\n(require util)\n(define: x : Integer (triple 7))\nx\n",
    );
    let v = lagoon.run("typed-client", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "21");
}

#[test]
fn editing_a_module_invalidates_it_and_its_dependents() {
    let (lagoon, _dir) = cached_world("edit");
    lagoon.run("main", EngineKind::Vm).unwrap();

    lagoon.add_module("util", &UTIL.replace("(* 3 n)", "(* 4 n)"));
    lagoon.registry().reset_compiled();
    let (v, report) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "56");
    let status = |m: &str| {
        report
            .caches
            .iter()
            .find(|r| r.module == m)
            .map(|r| (r.status, r.detail.clone()))
            .unwrap_or_else(|| panic!("no cache row for {m}: {:?}", report.caches))
    };
    assert_eq!(status("util").0, "stale");
    assert_eq!(status("util").1, "source changed");
    assert_eq!(status("main").0, "stale");
    assert_eq!(status("main").1, "dependency util recompiled");

    // and the rewritten artifacts hit on the next warm run
    lagoon.registry().reset_compiled();
    let (_, warm) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(warm.cache_hits(), 2, "{:?}", warm.caches);
}

#[test]
fn corrupt_artifacts_recompile_with_a_diagnostic() {
    let (lagoon, dir) = cached_world("corrupt");
    lagoon.run("main", EngineKind::Vm).unwrap();

    // flip a byte in the middle of util's artifact
    let path = dir.join("util.lagc");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    lagoon.registry().reset_compiled();
    let (v, report) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "42", "corruption must not change behavior");
    assert!(
        report
            .caches
            .iter()
            .any(|r| r.module == "util" && r.status == "corrupt"),
        "expected a corrupt row: {:?}",
        report.caches
    );

    // truncation is also corruption, and also recovers
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len().min(10)]).unwrap();
    lagoon.registry().reset_compiled();
    let (v, report) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "42");
    assert!(
        report
            .caches
            .iter()
            .any(|r| r.module == "util" && r.status == "corrupt"),
        "expected a corrupt row: {:?}",
        report.caches
    );
}

#[test]
fn old_format_artifacts_are_stale_not_corrupt() {
    let (lagoon, dir) = cached_world("oldformat");
    lagoon.run("main", EngineKind::Vm).unwrap();

    // rewrite util's artifact as a previous-format one: the version is a
    // single-byte varint right after the 4-byte magic, and it sits in the
    // outer frame, *outside* the body content digest — so this is exactly
    // what a leftover pre-bump artifact looks like, digest intact
    let path = dir.join("util.lagc");
    let mut bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..4], b"LAGC");
    assert_eq!(u32::from(bytes[4]), lagoon_core::store::FORMAT_VERSION);
    bytes[4] = 1;
    std::fs::write(&path, &bytes).unwrap();

    lagoon.registry().reset_compiled();
    let (v, report) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "42", "stale artifact must recompile cleanly");
    let util = report
        .caches
        .iter()
        .find(|r| r.module == "util")
        .unwrap_or_else(|| panic!("no cache row for util: {:?}", report.caches));
    assert_eq!(
        util.status, "stale",
        "old format must be stale, not corrupt"
    );
    assert!(
        util.detail.contains("format version 1"),
        "diagnostic should name the found version: {}",
        util.detail
    );

    // the recompile rewrote a current-format artifact that now hits
    lagoon.registry().reset_compiled();
    let (_, warm) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(warm.cache_hits(), 2, "{:?}", warm.caches);
}

#[test]
fn peephole_setting_is_part_of_cache_validity() {
    let (lagoon, _dir) = cached_world("peephole");
    assert!(lagoon::peephole_enabled(), "peephole defaults to on");
    lagoon.run("main", EngineKind::Vm).unwrap();

    // a --no-peephole session must not reuse fused bytecode
    lagoon.set_peephole(false);
    lagoon.registry().reset_compiled();
    let (v, report) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "42");
    let util = report
        .caches
        .iter()
        .find(|r| r.module == "util")
        .unwrap_or_else(|| panic!("no cache row for util: {:?}", report.caches));
    assert_eq!(util.status, "stale");
    assert!(
        util.detail.contains("peephole"),
        "diagnostic should name the mismatch: {}",
        util.detail
    );

    // the unfused artifacts hit while the setting is unchanged...
    lagoon.registry().reset_compiled();
    let (_, warm) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(warm.cache_hits(), 2, "{:?}", warm.caches);

    // ...and switching back invalidates them again
    lagoon.set_peephole(true);
    lagoon.registry().reset_compiled();
    let (v, report) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "42");
    assert_eq!(report.cache_hits(), 0, "{:?}", report.caches);
}

#[test]
fn stats_report_timing_buckets_and_load_phase() {
    let (lagoon, _dir) = cached_world("buckets");
    let (_, cold) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    let bucket = |report: &lagoon::diag::Report, name: &str| {
        report
            .timing_buckets()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns)
            .unwrap()
    };
    assert!(bucket(&cold, "expand") > 0, "cold run expands");
    assert!(bucket(&cold, "compile") > 0, "cold run compiles");

    lagoon.registry().reset_compiled();
    let (_, warm) = lagoon.run_with_stats("main", EngineKind::Vm).unwrap();
    assert_eq!(bucket(&warm, "read"), 0, "warm run reads nothing");
    assert_eq!(bucket(&warm, "expand"), 0, "warm run expands nothing");
    assert_eq!(bucket(&warm, "compile"), 0, "warm run compiles nothing");
    assert!(bucket(&warm, "load") > 0, "warm run loads artifacts");
    let json = warm.to_json();
    assert!(json.contains("\"buckets\""), "buckets missing from {json}");
    assert!(json.contains("\"cache\""), "cache rows missing from {json}");
}

#[test]
fn macro_generated_requires_resolve_through_the_lazy_loader() {
    // no pre-scan of this source can see the require — it only exists
    // after (use-math) expands, at which point the loader supplies the
    // module's source on demand
    let lagoon = Lagoon::new();
    lagoon.set_module_loader(|name| match name {
        "mathlib" => {
            Some("#lang lagoon\n(define (add2 a b) (+ a b))\n(provide add2)\n".to_string())
        }
        _ => None,
    });
    lagoon.add_module(
        "main",
        "#lang lagoon
(define-syntax use-math (syntax-rules () [(_) (require mathlib)]))
(use-math)
(add2 40 2)
",
    );
    assert_eq!(
        lagoon.run("main", EngineKind::Vm).unwrap().to_string(),
        "42"
    );
    assert_eq!(
        lagoon.run("main", EngineKind::Interp).unwrap().to_string(),
        "42"
    );
    // unknown modules still error cleanly through the loader path
    lagoon.add_module("broken", "#lang lagoon\n(require no-such-module)\n1\n");
    let err = lagoon.run("broken", EngineKind::Vm).unwrap_err();
    assert!(err.to_string().contains("no-such-module"), "{err}");
}

#[test]
fn modules_with_macro_exports_are_skipped_not_broken() {
    // a hosted macro export has no serialized form, so the module is
    // uncacheable — it recompiles every run, and stays correct
    let dir = temp_store("uncacheable");
    let lagoon = Lagoon::new();
    lagoon.set_cache_dir(Some(dir.clone()));
    lagoon.add_module(
        "macros",
        "#lang lagoon
(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))
(provide twice)
",
    );
    lagoon.add_module(
        "user",
        "#lang lagoon\n(require macros)\n(define c 0)\n(twice (set! c (+ c 1)))\nc\n",
    );
    let (v, report) = lagoon.run_with_stats("user", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "2");
    assert!(
        !dir.join("macros.lagc").exists(),
        "macro module must not cache"
    );
    assert!(
        report
            .caches
            .iter()
            .any(|r| r.module == "macros" && r.detail.contains("not cached")),
        "expected an uncacheable diagnostic: {:?}",
        report.caches
    );
    // its importer cannot cache either (its dependency has no digest)
    assert!(!dir.join("user.lagc").exists());

    // and on a second pass everything still runs
    lagoon.registry().reset_compiled();
    let v = lagoon.run("user", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "2");
}

// ---------------------------------------------------------------------------
// Parallel builds against a shared store
// ---------------------------------------------------------------------------

/// A 12-module diamond-and-chain graph mixing typed and untyped
/// languages: `top` requires two mid modules, each chaining down to a
/// shared typed leaf.
fn stress_graph() -> std::collections::BTreeMap<String, String> {
    let mut sources = std::collections::BTreeMap::new();
    sources.insert(
        "leaf".to_string(),
        "#lang typed/lagoon
(: base : Integer -> Integer)
(define (base n) (+ n 1))
(provide base)
"
        .to_string(),
    );
    // two chains of 4 typed modules each, both ending at the leaf
    for chain in ["a", "b"] {
        for i in 0..4 {
            let prev = if i == 3 {
                "leaf".to_string()
            } else {
                format!("{chain}{}", i + 1)
            };
            let prev_fn = if i == 3 {
                "base".to_string()
            } else {
                format!("f{chain}{}", i + 1)
            };
            sources.insert(
                format!("{chain}{i}"),
                format!(
                    "#lang typed/lagoon
(require {prev})
(: f{chain}{i} : Integer -> Integer)
(define (f{chain}{i} n) (+ 1 ({prev_fn} n)))
(provide f{chain}{i})
"
                ),
            );
        }
    }
    sources.insert(
        "mid".to_string(),
        "#lang lagoon
(require a0 b0)
(define (both n) (+ (fa0 n) (fb0 n)))
(provide both)
"
        .to_string(),
    );
    sources.insert(
        "top".to_string(),
        "#lang lagoon
(require mid)
(both 10)
"
        .to_string(),
    );
    sources
}

fn artifact_bytes(dir: &std::path::Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut map = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "lagc") {
            map.insert(
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            );
        }
    }
    map
}

#[test]
fn concurrent_builders_share_one_store_byte_identically() {
    let sources = stress_graph();
    assert!(sources.len() >= 10, "graph must be 10+ modules");
    let entries = vec!["top".to_string()];

    // serial reference build
    let serial_dir = temp_store("stress-serial");
    let serial = lagoon::server::build_from_map(
        &entries,
        sources.clone(),
        &lagoon::server::BuildOptions {
            jobs: 1,
            cache_dir: Some(serial_dir.clone()),
            ..Default::default()
        },
    );
    assert!(
        serial.success(),
        "serial build failed: {:?}",
        serial.failures()
    );
    assert_eq!(serial.modules.len(), sources.len());

    // two OS threads race parallel builds of the same graph against one
    // shared cache directory
    let shared_dir = temp_store("stress-shared");
    let reports: Vec<lagoon::server::BuildReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let sources = sources.clone();
                let entries = entries.clone();
                let dir = shared_dir.clone();
                scope.spawn(move || {
                    lagoon::server::build_from_map(
                        &entries,
                        sources,
                        &lagoon::server::BuildOptions {
                            jobs: 2,
                            cache_dir: Some(dir),
                            ..Default::default()
                        },
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for report in &reports {
        assert!(
            report.success(),
            "concurrent build failed: {:?}",
            report.failures()
        );
        assert_eq!(report.modules.len(), sources.len());
        // the store counters add up: every module in the graph produced
        // at least one store lookup (hit, miss, or stale — a stale row
        // is the fresh-dep-forces-recompile rule at work), and the
        // summary counters agree with the merged diag cache rows
        let graph_rows = |status: &str| {
            report
                .diag
                .caches
                .iter()
                .filter(|c| c.status == status && sources.contains_key(&c.module))
                .count()
        };
        let (hits, misses, stale) = (graph_rows("hit"), graph_rows("miss"), graph_rows("stale"));
        assert_eq!(hits, report.cache_hits, "summary hits disagree with rows");
        assert_eq!(
            misses, report.cache_misses,
            "summary misses disagree with rows"
        );
        assert!(
            hits + misses + stale >= sources.len(),
            "hits {hits} + misses {misses} + stale {stale} cannot cover {} modules",
            sources.len()
        );
    }

    // artifacts written under contention are byte-identical to the
    // serial build's (atomic tmp+rename writes, deterministic gensyms)
    let serial_artifacts = artifact_bytes(&serial_dir);
    let shared_artifacts = artifact_bytes(&shared_dir);
    assert_eq!(
        serial_artifacts.keys().collect::<Vec<_>>(),
        shared_artifacts.keys().collect::<Vec<_>>(),
        "same artifact set"
    );
    assert_eq!(serial_artifacts.len(), sources.len());
    for (name, bytes) in &serial_artifacts {
        assert_eq!(
            bytes, &shared_artifacts[name],
            "artifact {name} differs between serial and contended builds"
        );
    }

    // no tmp files leak from the atomic-write path
    let leftovers: Vec<_> = std::fs::read_dir(&shared_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "leaked tmp files: {leftovers:?}");

    // and the contended store is immediately usable by a fresh world
    let lagoon = Lagoon::new();
    lagoon.set_cache_dir(Some(shared_dir));
    for (name, source) in &sources {
        lagoon.add_module(name, source);
    }
    let (v, report) = lagoon.run_with_stats("top", EngineKind::Vm).unwrap();
    assert_eq!(v.to_string(), "30");
    assert_eq!(
        report.cache_misses(),
        0,
        "warm world recompiled: {:?}",
        report.caches
    );
}

#[test]
fn parallel_build_jobs_do_not_change_artifacts() {
    let sources = stress_graph();
    let entries = vec!["top".to_string()];
    let mut reference: Option<std::collections::BTreeMap<String, Vec<u8>>> = None;
    for jobs in [1usize, 4] {
        let dir = temp_store(&format!("jobs-{jobs}"));
        let report = lagoon::server::build_from_map(
            &entries,
            sources.clone(),
            &lagoon::server::BuildOptions {
                jobs,
                cache_dir: Some(dir.clone()),
                ..Default::default()
            },
        );
        assert!(report.success(), "jobs={jobs}: {:?}", report.failures());
        let artifacts = artifact_bytes(&dir);
        match &reference {
            None => reference = Some(artifacts),
            Some(expected) => assert_eq!(
                expected, &artifacts,
                "--jobs {jobs} artifacts differ from --jobs 1"
            ),
        }
    }
}

#[test]
fn parallel_build_reports_failures_and_skips_dependents() {
    let mut sources = stress_graph();
    sources.insert(
        "a2".to_string(),
        "#lang typed/lagoon\n(: broken : Integer)\n(define broken \"nope\")\n".to_string(),
    );
    let report = lagoon::server::build_from_map(
        &["top".to_string()],
        sources,
        &lagoon::server::BuildOptions {
            jobs: 4,
            cache_dir: Some(temp_store("fail")),
            ..Default::default()
        },
    );
    assert!(!report.success());
    let status_of = |name: &str| {
        report
            .modules
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.status.clone())
    };
    assert!(
        matches!(
            status_of("a2"),
            Some(lagoon::server::ModuleStatus::Failed(_))
        ),
        "a2 must fail: {:?}",
        status_of("a2")
    );
    // everything downstream of a2 is skipped, not attempted
    for name in ["a1", "a0", "mid", "top"] {
        assert!(
            matches!(
                status_of(name),
                Some(lagoon::server::ModuleStatus::Skipped(_))
            ),
            "{name} should be skipped: {:?}",
            status_of(name)
        );
    }
    // the untouched chain still builds
    for name in ["b0", "b1", "b2", "b3", "leaf"] {
        assert!(
            matches!(status_of(name), Some(lagoon::server::ModuleStatus::Built)),
            "{name} should build: {:?}",
            status_of(name)
        );
    }
}
