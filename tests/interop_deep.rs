//! Deeper typed/untyped interoperation: higher-order contracts, blame
//! through multiple boundaries, and data contracts (paper §6, pushed
//! past the inline examples).

use lagoon::{EngineKind, Kind, Lagoon};

fn contract_blame(err: &lagoon::RtError) -> Option<String> {
    match &err.kind {
        Kind::Contract { blame } => Some(blame.as_str()),
        _ => None,
    }
}

#[test]
fn higher_order_arguments_are_wrapped() {
    // a typed module exporting (-> (-> Integer Integer) Integer): the
    // function-typed *argument* must itself be wrapped, with blame
    // flipped — if the untyped client's callback returns a string, the
    // client is blamed
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "server",
        "#lang typed/lagoon
         (: apply-twice : (-> Integer Integer) -> Integer)
         (define (apply-twice f) (f (f 1)))
         (provide apply-twice)",
    );
    lagoon.add_module(
        "good",
        "#lang lagoon
         (require server)
         (apply-twice (lambda (x) (* x 10)))",
    );
    assert_eq!(
        lagoon.run("good", EngineKind::Vm).unwrap().to_string(),
        "100"
    );

    lagoon.add_module(
        "bad",
        "#lang lagoon
         (require server)
         (apply-twice (lambda (x) \"surprise\"))",
    );
    let err = lagoon.run("bad", EngineKind::Vm).unwrap_err();
    let blame = contract_blame(&err).expect("contract violation");
    assert_eq!(blame, "untyped-client", "got: {err}");
}

#[test]
fn data_contracts_check_lists_deeply() {
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "server",
        "#lang typed/lagoon
         (: sum-all : (Listof Integer) -> Integer)
         (define (sum-all l)
           (foldl (lambda: ([x : Integer] [acc : Integer]) (+ x acc)) 0 l))
         (provide sum-all)",
    );
    lagoon.add_module(
        "good",
        "#lang lagoon\n(require server)\n(sum-all (list 1 2 3))\n",
    );
    assert_eq!(lagoon.run("good", EngineKind::Vm).unwrap().to_string(), "6");

    lagoon.add_module(
        "bad",
        "#lang lagoon\n(require server)\n(sum-all (list 1 \"two\" 3))\n",
    );
    let err = lagoon.run("bad", EngineKind::Vm).unwrap_err();
    assert!(contract_blame(&err).is_some(), "got: {err}");
}

#[test]
fn blame_traverses_long_chains() {
    // typed A → untyped B → typed C → untyped D: D's bad value must be
    // blamed on D (the library that lied), not on anyone in between
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "d",
        "#lang lagoon\n(define (mystery) \"not-a-number\")\n(provide mystery)\n",
    );
    lagoon.add_module(
        "c",
        "#lang typed/lagoon
         (require/typed d [mystery (-> Integer)])
         (: via-c : -> Integer)
         (define (via-c) (mystery))
         (provide via-c)",
    );
    lagoon.add_module(
        "b",
        "#lang lagoon\n(require c)\n(define (via-b) (via-c))\n(provide via-b)\n",
    );
    lagoon.add_module(
        "a",
        "#lang typed/lagoon
         (require/typed b [via-b (-> Integer)])
         (via-b)",
    );
    let err = lagoon.run("a", EngineKind::Vm).unwrap_err();
    assert_eq!(contract_blame(&err).as_deref(), Some("d"), "got: {err}");
}

#[test]
fn zero_argument_functions_cross_boundaries() {
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "server",
        "#lang typed/lagoon
         (: make-counter : -> (-> Integer))
         (define (make-counter)
           (let: ([n : Integer 0])
             (lambda: () : Integer (begin (set! n (+ n 1)) n))))
         (provide make-counter)",
    );
    lagoon.add_module(
        "client",
        "#lang lagoon
         (require server)
         (define c (make-counter))
         (c) (c) (c)",
    );
    assert_eq!(
        lagoon.run("client", EngineKind::Vm).unwrap().to_string(),
        "3"
    );
}

#[test]
fn typed_reexports_through_untyped_keep_protection() {
    // an untyped module re-providing a typed module's export: the
    // contracted value flows through and still protects
    let lagoon = Lagoon::new();
    lagoon.add_module(
        "typed-src",
        "#lang typed/lagoon
         (: half : Integer -> Integer)
         (define (half x) (quotient x 2))
         (provide half)",
    );
    lagoon.add_module(
        "relay",
        "#lang lagoon
         (require typed-src)
         (define relayed half)
         (provide relayed)",
    );
    lagoon.add_module(
        "end",
        "#lang lagoon
         (require relay)
         (list (relayed 10) (relayed 11))",
    );
    assert_eq!(
        lagoon.run("end", EngineKind::Vm).unwrap().to_string(),
        "(5 5)"
    );
    lagoon.add_module(
        "end-bad",
        "#lang lagoon\n(require relay)\n(relayed \"ten\")\n",
    );
    let err = lagoon.run("end-bad", EngineKind::Vm).unwrap_err();
    assert!(contract_blame(&err).is_some(), "got: {err}");
}

#[test]
fn engines_agree_on_contract_behaviour() {
    let build = |lagoon: &Lagoon| {
        lagoon.add_module(
            "server",
            "#lang typed/lagoon
             (: pick : (Listof Integer) Integer -> Integer)
             (define (pick l i) (list-ref l i))
             (provide pick)",
        );
        lagoon.add_module(
            "client",
            "#lang lagoon\n(require server)\n(pick (list 10 20 30) 1)\n",
        );
    };
    let l1 = Lagoon::new();
    build(&l1);
    let vm = l1.run("client", EngineKind::Vm).unwrap();
    let l2 = Lagoon::new();
    build(&l2);
    let interp = l2.run("client", EngineKind::Interp).unwrap();
    assert!(vm.equal(&interp));
}
